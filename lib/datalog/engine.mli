(** High-level entry point for the classical substrate: take a (possibly
    non-ground) seminegative program, ground it, and evaluate it under the
    classical semantics the paper compares against.

    Negative body literals are read as negation-as-failure here (the
    closed-world reading); for the classical-negation reading use the
    [Ordered] library (directly, or through its [OV]/[EV] bridges). *)

type t

val load :
  ?budget:Governor.Budget.t ->
  ?depth:int ->
  ?grounder:[ `Naive | `Relevant ] ->
  Logic.Rule.t list ->
  t
(** Ground and intern a seminegative program.  [`Relevant] (default) uses
    NAF-aware relevance grounding, which preserves all the semantics
    below; [`Naive] instantiates over the full universe.  [budget] bounds
    the grounding (semi-naive) loop; exhaustion raises
    [Governor.Budget.Exhausted]. *)

val load_src :
  ?budget:Governor.Budget.t ->
  ?depth:int ->
  ?grounder:[ `Naive | `Relevant ] ->
  string ->
  t
(** Parse the rules from surface syntax first. *)

val nprog : t -> Nprog.t
val ground_rules : t -> Logic.Rule.t list

val minimal_model : t -> Logic.Atom.Set.t
(** Least fixpoint of [T_P] (NAF rules never fire); the minimal total
    model for a positive program. *)

val well_founded : ?budget:Governor.Budget.t -> t -> Logic.Interp.t
(** The well-founded (3-valued) model (computed on first call, then
    cached; the budget only governs the computing call). *)

val stable_models :
  ?limit:int -> ?budget:Governor.Budget.t -> t -> Logic.Atom.Set.t list
(** The classical (total, Gelfond–Lifschitz) stable models. *)

val perfect_model : t -> Logic.Atom.Set.t option
(** The perfect model, when the source program is stratified. *)

val is_stratified : t -> bool

val holds : ?budget:Governor.Budget.t -> t -> Logic.Literal.t -> Logic.Interp.value
(** Value of a ground literal in the well-founded model. *)
