(** Interned ground normal programs.

    A {e normal} (the paper's {e seminegative}) program has positive rule
    heads; a negative body literal [-A] is read here as negation-as-failure
    on [A].  Atoms are interned to dense integers so the fixpoint engines
    run on arrays. *)

type rule = {
  head : int;
  pos : int array;  (** positive body atoms *)
  neg : int array;  (** NAF-negated body atoms *)
}

type t = {
  atoms : Logic.Atom.t array;  (** id -> atom *)
  ids : int Logic.Atom.Tbl.t;  (** atom -> id *)
  rules : rule array;
  by_pos : int list array;  (** atom id -> indices of rules with it in [pos] *)
  by_neg : int list array;  (** atom id -> indices of rules with it in [neg] *)
  by_head : int list array;  (** atom id -> indices of rules with it as head *)
}

val of_rules : Logic.Rule.t list -> t
(** Intern a ground seminegative program.  Raises [Invalid_argument] on a
    negative head or a non-ground rule. *)

val n_atoms : t -> int

val atom_id : t -> Logic.Atom.t -> int option
(** Look up an atom's id ([None] if the atom does not occur). *)

val set_of_ids : t -> int list -> Logic.Atom.Set.t
(** Decode a list of atom ids. *)

val ids_of_mask : bool array -> int list
(** Indices set in a boolean mask, ascending. *)

val decode_mask : t -> bool array -> Logic.Atom.Set.t
(** Atoms whose mask entry is [true]. *)
