(** Perfect-model (iterated fixpoint) semantics for stratified programs
    [ABW, P1, P2].

    Strata are evaluated bottom-up: within a stratum, negative literals
    refer only to lower strata and are decided by closed-world assumption
    on the result so far.  For a stratified program the perfect model is
    total, unique, and coincides with both the well-founded and the unique
    stable model. *)

val model : Nprog.t -> Logic.Rule.t list -> Logic.Atom.Set.t option
(** [model p src] evaluates the ground program [p] stratum by stratum
    according to the stratification of the (possibly non-ground) source
    rules [src]; [None] if [src] is not stratified. *)

val model_of_ground : Nprog.t -> Logic.Atom.Set.t option
(** Stratify the ground program itself (each ground atom's predicate). *)
