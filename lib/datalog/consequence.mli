(** The immediate consequence transformation [T_P] and its least fixpoint
    — the minimal total model of a positive program ([L], [U]; paper,
    Section 2). *)

val step : Nprog.t -> bool array -> bool array
(** One application of [T_P] to a set of atoms (given and returned as a
    mask over the program's atom ids): atoms whose rule has every positive
    body atom in the input and no NAF literal ({b NAF literals are
    ignored}, i.e. the program is assumed positive; use {!reduct} first
    for programs with negation). *)

val lfp : ?budget:Governor.Budget.t -> Nprog.t -> bool array
(** Least fixpoint of [T_P] from the empty set, computed with the counting
    (semi-naive) algorithm in time linear in program size.  NAF body
    literals make a rule never fire. *)

val lfp_naive : ?budget:Governor.Budget.t -> Nprog.t -> bool array
(** Same result via naive iteration of {!step} (quadratic); kept as the
    reference implementation and as a benchmark baseline. *)

val reduct : Nprog.t -> assumed_false:(int -> bool) -> Nprog.rule array
(** Gelfond–Lifschitz reduct w.r.t. a candidate set [S]: keep rule [r] iff
    every NAF atom [a] of [r] satisfies [assumed_false a] (i.e. [a] is not
    in [S]); kept rules are returned with [neg] emptied. *)

val lfp_rules :
  ?budget:Governor.Budget.t -> Nprog.t -> Nprog.rule array -> bool array
(** Least fixpoint of [T] over an explicit (positive) rule array, using the
    counting algorithm; [Nprog.t] supplies only the atom table. *)
