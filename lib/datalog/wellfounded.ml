open Logic
module Budget = Governor.Budget

type result = { true_ : bool array; false_ : bool array }

let gamma ?budget (p : Nprog.t) (s : bool array) =
  let rules = Consequence.reduct p ~assumed_false:(fun a -> not s.(a)) in
  Consequence.lfp_rules ?budget p rules

let compute ?(budget = Budget.unlimited) (p : Nprog.t) =
  let n = Nprog.n_atoms p in
  (* K ascends to lfp(gamma^2); U descends to gfp(gamma^2), starting from
     K0 = empty, U0 = gamma(K0) (all atoms potentially true). *)
  let k = ref (Array.make n false) in
  let u = ref (gamma ~budget p !k) in
  let continue_ = ref true in
  while !continue_ do
    Budget.check budget;
    let k' = gamma ~budget p !u in
    let u' = gamma ~budget p k' in
    if k' = !k && u' = !u then continue_ := false
    else begin
      k := k';
      u := u'
    end
  done;
  { true_ = !k; false_ = Array.map not !u }

let model ?budget (p : Nprog.t) =
  let r = compute ?budget p in
  let acc = ref Interp.empty in
  Array.iteri
    (fun i a ->
      if r.true_.(i) then acc := Interp.set !acc a true
      else if r.false_.(i) then acc := Interp.set !acc a false)
    p.atoms;
  !acc

let is_total r =
  Array.for_all Fun.id (Array.mapi (fun i t -> t || r.false_.(i)) r.true_)
