open Logic

type grule = {
  head : int;
  head_pol : bool;
  body : (int * bool) array;
  comp : Program.component_id;
  name : string option;  (* source rule name, kept on ground instances *)
}

type t = {
  program : Program.t;
  comp : Program.component_id;
  atoms : Atom.t array;
  ids : int Atom.Tbl.t;
  rules : grule array;
  by_head : int list array;
  by_body_pos : int list array;
  by_body_neg : int list array;
  overrulers : int list array;
  defeaters : int list array;
  suppresses : int list array;
  universe : Term.t list;
  active_base : Atom.t list;
  full_base : Atom.t list Lazy.t;
}

let dedup_body body =
  Literal.Set.elements (Literal.Set.of_list body)

let of_view ?(depth = 0) ?(extra_constants = []) program comp tagged =
  let untagged = List.map snd tagged in
  let sg = Herbrand.signature_of_rules untagged in
  let sg =
    { sg with
      Herbrand.constants =
        Term.Set.elements
          (Term.Set.union
             (Term.Set.of_list sg.Herbrand.constants)
             (Term.Set.of_list extra_constants))
    }
  in
  let universe = Herbrand.universe ~depth sg in
  let full_base =
    lazy (Herbrand.base ~depth ~skip:Ground.Builtin.is_builtin sg)
  in
  let ids = Atom.Tbl.create 256 in
  let atoms = ref [] in
  let n = ref 0 in
  let intern a =
    match Atom.Tbl.find_opt ids a with
    | Some i -> i
    | None ->
      let i = !n in
      Atom.Tbl.add ids a i;
      atoms := a :: !atoms;
      incr n;
      i
  in
  let rules =
    List.map
      (fun (c, (r : Rule.t)) ->
        if not (Rule.is_ground r) then
          invalid_arg "Gop.of_view: non-ground rule in view";
        { head = intern (Rule.head r).Literal.atom;
          head_pol = Literal.is_positive (Rule.head r);
          body =
            Array.of_list
              (List.map
                 (fun (l : Literal.t) -> (intern l.atom, l.pol))
                 (dedup_body (Rule.body r)));
          comp = c;
          name = Rule.name r
        })
      tagged
    |> Array.of_list
  in
  let atoms = Array.of_list (List.rev !atoms) in
  let na = Array.length atoms in
  let nr = Array.length rules in
  let by_head = Array.make na [] in
  let by_body_pos = Array.make na [] in
  let by_body_neg = Array.make na [] in
  Array.iteri
    (fun i r ->
      by_head.(r.head) <- i :: by_head.(r.head);
      Array.iter
        (fun (a, pol) ->
          if pol then by_body_pos.(a) <- i :: by_body_pos.(a)
          else by_body_neg.(a) <- i :: by_body_neg.(a))
        r.body)
    rules;
  let overrulers = Array.make nr [] in
  let defeaters = Array.make nr [] in
  let suppresses = Array.make nr [] in
  let poset = Program.poset program in
  for a = 0 to na - 1 do
    let here = by_head.(a) in
    List.iter
      (fun i ->
        List.iter
          (fun j ->
            if rules.(i).head_pol <> rules.(j).head_pol then begin
              (* j contradicts i.  Definition 2: j overrules i when
                 C(j) < C(i); j defeats i when C(j) <> C(i) or
                 C(j) = C(i). *)
              let ci = rules.(i).comp and cj = rules.(j).comp in
              if Poset.lt poset cj ci then begin
                overrulers.(i) <- j :: overrulers.(i);
                suppresses.(j) <- i :: suppresses.(j)
              end
              else if ci = cj || Poset.incomparable poset ci cj then begin
                defeaters.(i) <- j :: defeaters.(i);
                suppresses.(j) <- i :: suppresses.(j)
              end
            end)
          here)
      here
  done;
  let active =
    Array.to_list atoms |> Atom.Set.of_list |> Atom.Set.elements
  in
  { program;
    comp;
    atoms;
    ids;
    rules;
    by_head;
    by_body_pos;
    by_body_neg;
    overrulers;
    defeaters;
    suppresses;
    universe;
    active_base = active;
    full_base
  }

let schema_universe ?(depth = 0) ?(extra_constants = []) program comp =
  let untagged = List.map snd (Program.view program comp) in
  let sg = Herbrand.signature_of_rules untagged in
  let sg =
    { sg with
      Herbrand.constants =
        Term.Set.elements
          (Term.Set.union
             (Term.Set.of_list sg.Herbrand.constants)
             (Term.Set.of_list extra_constants))
    }
  in
  Herbrand.universe ~depth sg

let ground_groups ?(budget = Budget.unlimited) ?max_instances
    ?(grounder = `Naive) ?(depth = 0) ?(extra_constants = []) program comp =
  let view = Program.view program comp in
  let untagged = List.map snd view in
  let universe = schema_universe ~depth ~extra_constants program comp in
  (* Count instances per source rule against the cap so the overflow
     diagnostic names the rule being instantiated. *)
  let count = ref 0 in
  let guard (r : Rule.t) insts =
    (match max_instances with
    | None -> ()
    | Some cap ->
      count := !count + List.length insts;
      if !count > cap then
        Diag.fail
          (Diag.Grounding_overflow
             { rule = Rule.to_string r;
               produced = !count;
               cap;
               universe = List.length universe
             }));
    insts
  in
  let raw =
    match grounder with
    | `Naive ->
      List.map
        (fun (c, r) ->
          (c, r, guard r (Ground.Grounder.ground_rule_instances ~budget ~universe r)))
        view
    | `Relevant ->
      let res =
        Ground.Grounder.relevant ~budget ~depth ~extra_constants untagged
      in
      let support = List.map Rule.head res.Ground.Grounder.rules in
      List.map
        (fun (c, r) ->
          ( c,
            r,
            guard r
              (Ground.Grounder.instances_supported_by ~budget ~universe
                 ~support r) ))
        view
  in
  (* Deduplicate instances per component (a rule occurring in two distinct
     components keeps distinct instances, as the paper requires of the
     function C).  The table is shared across the whole view, in view
     order, so flattening the groups reproduces the deduplicated tagged
     list exactly — incremental re-grounding (lib/inc) relies on that to
     rebuild groundings bit-identical to a from-scratch [ground]. *)
  let seen = Hashtbl.create 256 in
  List.map
    (fun (c, src, insts) ->
      let insts =
        List.filter
          (fun r ->
            let key = (c, Rule.to_string r) in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          insts
      in
      (c, src, insts))
    raw

let flatten_groups groups =
  List.concat_map
    (fun (c, _, insts) -> List.map (fun inst -> (c, inst)) insts)
    groups

let ground ?budget ?max_instances ?grounder ?(depth = 0) ?(extra_constants = [])
    program comp =
  let groups =
    ground_groups ?budget ?max_instances ?grounder ~depth ~extra_constants
      program comp
  in
  of_view ~depth ~extra_constants program comp (flatten_groups groups)

let n_atoms t = Array.length t.atoms
let n_rules t = Array.length t.rules
let atom_id t a = Atom.Tbl.find_opt t.ids a

let rule_src t i =
  let r = t.rules.(i) in
  let src =
    Rule.make
      (Literal.make r.head_pol t.atoms.(r.head))
      (Array.to_list
         (Array.map (fun (a, pol) -> Literal.make pol t.atoms.(a)) r.body))
  in
  match r.name with Some n -> Rule.with_name n src | None -> src

type stats = {
  atoms : int;
  rules : int;
  body_literals : int;
  overruling_edges : int;
  defeating_edges : int;
}

let stats t =
  { atoms = n_atoms t;
    rules = n_rules t;
    body_literals =
      Array.fold_left (fun n r -> n + Array.length r.body) 0 t.rules;
    overruling_edges =
      Array.fold_left (fun n l -> n + List.length l) 0 t.overrulers;
    defeating_edges =
      Array.fold_left (fun n l -> n + List.length l) 0 t.defeaters
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d atoms, %d rules, %d body literals, %d overruling edges, %d \
     defeating edges"
    s.atoms s.rules s.body_literals s.overruling_edges s.defeating_edges

let find_rule t comp (r : Rule.t) =
  let target_head = Rule.head r in
  let target_body = Literal.Set.of_list (Rule.body r) in
  let rec go i =
    if i >= n_rules t then None
    else
      let g = t.rules.(i) in
      let src = rule_src t i in
      if
        g.comp = comp
        && Literal.equal (Rule.head src) target_head
        && Literal.Set.equal (Rule.body_set src) target_body
      then Some i
      else go (i + 1)
  in
  go 0

module Values = struct
  type gop = t
  type t = int array (* 0 = undefined, 1 = true, 2 = false *)

  let create (g : gop) = Array.make (Array.length g.atoms) 0
  let copy = Array.copy

  let value (v : t) i =
    match v.(i) with
    | 0 -> Interp.Undefined
    | 1 -> Interp.True
    | _ -> Interp.False

  let set (v : t) i b =
    let code = if b then 1 else 2 in
    if v.(i) <> 0 && v.(i) <> code then
      invalid_arg "Gop.Values.set: inconsistent assignment"
    else v.(i) <- code

  let unset (v : t) i = v.(i) <- 0
  let defined (v : t) i = v.(i) <> 0
  let equal (a : t) (b : t) = a = b

  let of_codes (a : int array) : t = a

  let of_interp (g : gop) interp =
    let v = create g in
    let extra = ref [] in
    Interp.iter
      (fun a b ->
        match atom_id g a with
        | Some i -> set v i b
        | None -> extra := Literal.make b a :: !extra)
      interp;
    (v, List.rev !extra)

  let to_interp (g : gop) (v : t) =
    let acc = ref Interp.empty in
    Array.iteri
      (fun i code ->
        if code = 1 then acc := Interp.set !acc g.atoms.(i) true
        else if code = 2 then acc := Interp.set !acc g.atoms.(i) false)
      v;
    !acc
end
