(** Static analysis of ordered programs (no grounding): which rules can
    conflict, and how the order resolves the conflict.

    Two rules {e potentially conflict} when their heads unify with
    opposite polarities.  Depending on where the rules live, the conflict
    is resolved by {e overruling} (one component strictly below the
    other), by {e defeating} (same or incomparable components), or is
    invisible from a given viewpoint.  The [olp check] command prints this
    report so knowledge-base authors can see the exception structure of
    their program before running it. *)

type resolution =
  | Overruling of { winner : Program.component_id }
      (** the rule in the lower component silences the other *)
  | Defeating
      (** mutual: both instances become undefined where they clash *)

type conflict = {
  rule_a : Logic.Rule.t;
  comp_a : Program.component_id;
  rule_b : Logic.Rule.t;
  comp_b : Program.component_id;
  resolution : resolution;
}

val conflicts : Program.t -> Program.component_id -> conflict list
(** All potential conflicts among the rules visible from a component, in
    a deterministic order.  Each unordered rule pair is reported once. *)

val conflict_free : Program.t -> Program.component_id -> bool
(** No two visible rules have unifiable complementary heads; the least
    model then coincides with the plain (suppression-free) fixpoint and
    is total whenever the classical program is. *)

val defeat_prone : Program.t -> Program.component_id -> conflict list
(** Just the {!Defeating} conflicts — places where knowledge stays
    undefined unless the author adds an ordering between the components
    involved. *)

val pp_conflict : Program.t -> Format.formatter -> conflict -> unit
