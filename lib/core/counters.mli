(** Search-effort counters — see {!Governor.Counters} for the full
    documentation.  Re-exported here so users of the [Ordered] library
    need not depend on [Governor] directly. *)

include module type of struct
  include Governor.Counters
end
