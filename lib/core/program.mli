(** Ordered programs (paper, Definition 1): a finite partially-ordered set
    of components, each a negative program (rules whose heads may be
    negative literals).

    Given a component [C] of [P], [C*] is the negative program
    [{ r | r in C_j and C <= C_j }] — the component's own ({e local}) rules
    together with the rules it inherits ({e global}) from the components
    above it. *)

type component_id = int

type t

val make :
  (string * Logic.Rule.t list) list ->
  (string * string) list ->
  (t, string) result
(** [make components order] builds an ordered program from named components
    and [(lower, higher)] order pairs.  Errors on duplicate component
    names, unknown names in order pairs, or a cyclic order. *)

val make_exn :
  (string * Logic.Rule.t list) list -> (string * string) list -> t
(** Like {!make}; raises [Invalid_argument] on error. *)

val singleton : Logic.Rule.t list -> t
(** A one-component ordered program (component name ["main"]) — a plain
    negative program, as in the paper's Examples 3–4. *)

val of_ast : Lang.Ast.t -> (t, string) result
val parse : string -> (t, string) result
(** Parse surface syntax (see {!Lang.Parser}); parse/lex errors are
    reported as [Error _] with position information in the message. *)

val parse_exn : string -> t

val n_components : t -> int
val component_names : t -> string array
val component_id : t -> string -> component_id option
val component_id_exn : t -> string -> component_id
val component_name : t -> component_id -> string
val rules_of : t -> component_id -> Logic.Rule.t list
(** The component's local rules. *)

val poset : t -> Poset.t

val view : t -> component_id -> (component_id * Logic.Rule.t) list
(** [C*]: the rules visible from the component, each tagged with the
    component it comes from ([C(r)] in the paper). *)

val all_rules : t -> Logic.Rule.t list
(** Every rule of every component (untagged). *)

val add_rules : t -> component_id -> Logic.Rule.t list -> t
(** A copy of the program with extra rules appended to one component
    (used to inject bulk EDB facts at a viewpoint). *)

val to_ast : t -> Lang.Ast.t
val pp : Format.formatter -> t -> unit
(** Surface-syntax rendering (round-trips through {!parse}). *)
