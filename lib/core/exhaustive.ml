open Logic

let atom_space ?(base = `Active) (g : Gop.t) =
  match base with
  | `Active -> g.Gop.active_base
  | `Full -> Lazy.force g.Gop.full_base

let is_total ?base g interp =
  Interp.is_total interp ~base:(atom_space ?base g)

(* Search for a proper superset of [interp] (over the undefined atoms of
   the space) that is a model; [f] receives each one found and returns
   [true] to continue the search. *)
let iter_superset_models ?base ?(budget = Budget.unlimited) g interp f =
  let undef = Interp.undefined_atoms interp ~base:(atom_space ?base g) in
  let undef = Array.of_list undef in
  let exception Stop in
  let rec go i m added =
    Budget.tick budget;
    if i >= Array.length undef then begin
      if added && Model.is_model g m then if not (f m) then raise Stop
    end
    else begin
      go (i + 1) m added;
      go (i + 1) (Interp.set m undef.(i) true) true;
      go (i + 1) (Interp.set m undef.(i) false) true
    end
  in
  try go 0 interp false with Stop -> ()

let is_exhaustive ?base ?budget g interp =
  Model.is_model g interp
  &&
  let found = ref false in
  iter_superset_models ?base ?budget g interp (fun _ ->
      found := true;
      false);
  not !found

let extend ?base ?budget g interp =
  if not (Model.is_model g interp) then
    invalid_arg "Exhaustive.extend: not a model";
  (* Take any largest superset model; it is exhaustive by construction. *)
  let best = ref interp in
  iter_superset_models ?base ?budget g interp (fun m ->
      if Interp.cardinal m > Interp.cardinal !best then best := m;
      true);
  !best

(* Same fail-first ordering as the stable search: most-mentioned atoms
   first, ties on the atom id, so the enumeration is deterministic. *)
let order_atoms (g : Gop.t) atoms =
  let occ = Array.make (Gop.n_atoms g) 0 in
  Array.iter
    (fun (r : Gop.grule) ->
      occ.(r.head) <- occ.(r.head) + 1;
      Array.iter (fun (a, _) -> occ.(a) <- occ.(a) + 1) r.body)
    g.Gop.rules;
  List.sort (fun a b -> compare (- occ.(a), a) (- occ.(b), b)) atoms

let total_models ?limit ?(budget = Budget.unlimited) ?stats (g : Gop.t) =
  (* Branch-and-propagate, like {!Stable.assumption_free_models}: a total
     model is in particular a model, hence closed under [V] and a superset
     of lfp(V), so the search seeds the assignment with the least fixpoint,
     re-propagates after every decision, and prunes on conflict.  No
     support pruning here — a total model may contain unsupported literals
     (only condition (a) constrains them).  Anytime: a partial result is a
     prefix of the unbudgeted enumeration. *)
  let stats = match stats with Some s -> s | None -> Counters.create () in
  let acc = ref [] in
  let count = ref 0 in
  try
    let seed = Vfix.lfp ~budget g in
    let branch =
      Array.of_list
        (order_atoms g
           (List.filter
              (fun a -> not (Gop.Values.defined seed a))
              (List.init (Gop.n_atoms g) Fun.id)))
    in
    let dec = Gop.Values.copy seed in
    let full () =
      match limit with
      | Some l -> !count >= l
      | None -> false
    in
    let rec node i =
      Budget.tick budget;
      stats.Counters.nodes <- stats.Counters.nodes + 1;
      if not (full ()) then
        match Vfix.propagate ~budget g dec with
        | Error _ -> stats.prunes <- stats.prunes + 1
        | Ok v -> (
          let rec next j =
            if j >= Array.length branch then None
            else if Gop.Values.defined v branch.(j) then begin
              if not (Gop.Values.defined dec branch.(j)) then
                stats.forced <- stats.forced + 1;
              next (j + 1)
            end
            else Some j
          in
          match next i with
          | None ->
            stats.leaves <- stats.leaves + 1;
            if Model.is_model_v g v then begin
              incr count;
              stats.models <- stats.models + 1;
              acc := Gop.Values.to_interp g v :: !acc
            end
          | Some j ->
            let a = branch.(j) in
            Gop.Values.set dec a true;
            node (j + 1);
            Gop.Values.unset dec a;
            Gop.Values.set dec a false;
            node (j + 1);
            Gop.Values.unset dec a)
    in
    node 0;
    Budget.Complete (List.rev !acc)
  with Budget.Exhausted r -> Budget.Partial (List.rev !acc, r)

(* The pre-propagation enumerator over complete assignments — the
   differential-testing oracle for the pruned search above and the
   baseline of the benchmark trajectory, not dead code. *)
module Naive = struct
  let total_models ?limit ?(budget = Budget.unlimited) ?stats (g : Gop.t) =
    let stats = match stats with Some s -> s | None -> Counters.create () in
    let atoms = Array.of_list g.Gop.active_base in
    let acc = ref [] in
    let count = ref 0 in
    let full () =
      match limit with
      | Some l -> !count >= l
      | None -> false
    in
    let rec go i m =
      Budget.tick budget;
      stats.Counters.nodes <- stats.Counters.nodes + 1;
      if not (full ()) then
        if i >= Array.length atoms then begin
          stats.leaves <- stats.leaves + 1;
          if Model.is_model g m then begin
            incr count;
            stats.models <- stats.models + 1;
            acc := m :: !acc
          end
        end
        else begin
          go (i + 1) (Interp.set m atoms.(i) true);
          go (i + 1) (Interp.set m atoms.(i) false)
        end
    in
    match go 0 Interp.empty with
    | () -> Budget.Complete (List.rev !acc)
    | exception Budget.Exhausted r -> Budget.Partial (List.rev !acc, r)
end
