open Logic

let atom_space ?(base = `Active) (g : Gop.t) =
  match base with
  | `Active -> g.Gop.active_base
  | `Full -> Lazy.force g.Gop.full_base

let is_total ?base g interp =
  Interp.is_total interp ~base:(atom_space ?base g)

(* Search for a proper superset of [interp] (over the undefined atoms of
   the space) that is a model; [f] receives each one found and returns
   [true] to continue the search. *)
let iter_superset_models ?base ?(budget = Budget.unlimited) g interp f =
  let undef = Interp.undefined_atoms interp ~base:(atom_space ?base g) in
  let undef = Array.of_list undef in
  let exception Stop in
  let rec go i m added =
    Budget.tick budget;
    if i >= Array.length undef then begin
      if added && Model.is_model g m then if not (f m) then raise Stop
    end
    else begin
      go (i + 1) m added;
      go (i + 1) (Interp.set m undef.(i) true) true;
      go (i + 1) (Interp.set m undef.(i) false) true
    end
  in
  try go 0 interp false with Stop -> ()

let is_exhaustive ?base ?budget g interp =
  Model.is_model g interp
  &&
  let found = ref false in
  iter_superset_models ?base ?budget g interp (fun _ ->
      found := true;
      false);
  not !found

let extend ?base ?budget g interp =
  if not (Model.is_model g interp) then
    invalid_arg "Exhaustive.extend: not a model";
  (* Take any largest superset model; it is exhaustive by construction. *)
  let best = ref interp in
  iter_superset_models ?base ?budget g interp (fun m ->
      if Interp.cardinal m > Interp.cardinal !best then best := m;
      true);
  !best

let total_models ?limit ?(budget = Budget.unlimited) (g : Gop.t) =
  (* Anytime, like {!Stable.assumption_free_models}: a partial result is a
     prefix of the unbudgeted enumeration. *)
  let atoms = Array.of_list g.Gop.active_base in
  let acc = ref [] in
  let count = ref 0 in
  let full () =
    match limit with
    | Some l -> !count >= l
    | None -> false
  in
  let rec go i m =
    Budget.tick budget;
    if not (full ()) then
      if i >= Array.length atoms then begin
        if Model.is_model g m then begin
          incr count;
          acc := m :: !acc
        end
      end
      else begin
        go (i + 1) (Interp.set m atoms.(i) true);
        go (i + 1) (Interp.set m atoms.(i) false)
      end
  in
  match go 0 Interp.empty with
  | () -> Budget.Complete (List.rev !acc)
  | exception Budget.Exhausted r -> Budget.Partial (List.rev !acc, r)
