(** The ordered immediate transformation [V_{P,C}] (paper, Definition 4)
    and its least fixpoint.

    [V(I) = { H(r) | r in ground(C-star), B(r) <= I, r neither overruled nor
    defeated w.r.t. I }].  [V] is monotone (Lemma 1): growing [I] can only
    satisfy more bodies and block more contradictors, so its least fixpoint
    from the empty interpretation exists and is reached in at most
    [2 * n_atoms] rounds.  By Theorem 1(b) the least fixpoint is the least
    model of [P] in [C], is assumption-free, and equals the intersection of
    all models.

    Two engines compute it:

    - {!lfp} — incremental counting: every rule keeps a count of unmet body
      literals and of non-blocked suppressors; deriving a literal decrements
      counts along precomputed adjacency, so the total work is linear in
      program size plus suppression edges.
    - {!lfp_naive} — fair re-evaluation of every rule each round (quadratic);
      the executable specification, kept as a cross-check and benchmark
      baseline. *)

val step : Gop.t -> Gop.Values.t -> Gop.Values.t
(** One application of [V] (returns a fresh assignment). *)

val lfp : ?budget:Budget.t -> Gop.t -> Gop.Values.t
(** Least fixpoint by the incremental counting engine.  [budget] is
    ticked once per derivation processed; exhaustion raises
    [Budget.Exhausted] (the least model is all-or-nothing — a partial
    fixpoint would be unsound to return).  An inconsistent internal
    derivation raises [Diag.Error (Internal_invariant _)] with the atom id
    and the two polarities. *)

val lfp_naive : ?budget:Budget.t -> Gop.t -> Gop.Values.t
(** Least fixpoint by Kleene iteration of {!step}; [budget] is polled once
    per round. *)

type conflict = {
  atom : int;  (** atom whose derivation clashed with the seed *)
  derived : bool;  (** polarity the engine tried to derive for it *)
}

val propagate :
  ?budget:Budget.t ->
  ?frozen:(int -> bool) ->
  Gop.t ->
  Gop.Values.t ->
  (Gop.Values.t, conflict) result
(** Restartable propagation: the least fixpoint of [V] {e above} a
    non-empty seed.  The counters of the incremental engine are
    initialised by one scan of the program against [seed] (which is not
    modified), and propagation then proceeds exactly as from the empty
    assignment — [budget] is ticked once per derivation processed.

    Because [V] is monotone and every model is closed under [V], the
    result is contained in every model of the program that extends the
    seed; the branch-and-propagate searches ({!Stable}, {!Exhaustive})
    call this after each decision to force implied values.

    [Error conflict] signals that no such model exists: the engine derived
    a literal contradicting the seed, or derived a value for an atom the
    caller declared [frozen] (decided to be {e undefined} — any derivation
    for it is a conflict).  [frozen] is only consulted for undefined
    atoms and defaults to accepting none. *)

val repair :
  ?budget:Budget.t ->
  Gop.t ->
  seed:Gop.Values.t ->
  [ `Repaired of Gop.Values.t | `Recomputed of Gop.Values.t ]
(** Repair a least fixpoint after a program change: propagate above a
    seed carrying the still-valid part of a previous fixpoint (the caller
    unsets every atom in the mutation's affected cone).  If the seed is
    below the new lfp — which the cone construction guarantees for
    monotone damage — the result is exactly the new lfp and is returned
    as [`Repaired].  A propagation conflict means the seed kept a value
    the new program refutes (non-monotone damage); the fixpoint is then
    recomputed from scratch and returned as [`Recomputed] — never a
    silent wrong answer.  [budget] is ticked as in {!lfp}. *)

val least_model :
  ?engine:[ `Incremental | `Naive ] -> ?budget:Budget.t -> Gop.t ->
  Logic.Interp.t
(** The least model [V^inf_{P,C}(0)] as a symbolic interpretation. *)

val trace : ?budget:Budget.t -> Gop.t -> (int * int) list
(** Firing order of the incremental engine: [(rule index, round)] pairs in
    derivation order (used by {!Explain}). *)
