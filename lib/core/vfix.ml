(* Pure V(I): the heads of the rules that fire under I.  For a consistent
   I the result is consistent: two complementary-headed rules cannot both
   be unsuppressed unless one is blocked, and a blocked rule's body is
   never satisfied by a consistent interpretation. *)
let step (g : Gop.t) v =
  let next = Gop.Values.create g in
  Array.iteri
    (fun i (r : Gop.grule) ->
      if
        Status.applicable g v i
        && (not (Status.overruled g v i))
        && not (Status.defeated g v i)
      then Gop.Values.set next r.head r.head_pol)
    g.rules;
  next

let lfp_naive ?(budget = Budget.unlimited) (g : Gop.t) =
  let rec go v =
    Budget.check budget;
    let v' = step g v in
    if Gop.Values.equal v v' then v else go v'
  in
  go (Gop.Values.create g)

(* Incremental counting engine.  Invariants:
   - missing.(i): body literals of rule i not yet true;
   - blocked.(i): some body literal of rule i is false;
   - active_sup.(i): suppressors (overrulers + defeaters) of i not yet
     blocked;
   - a rule fires (derives its head) when missing = 0 and active_sup = 0.
   Monotonicity (Lemma 1) makes all three evolve in one direction only. *)
let run_incremental ?(budget = Budget.unlimited) (g : Gop.t) =
  Budget.check budget;
  let nr = Gop.n_rules g in
  let v = Gop.Values.create g in
  let missing = Array.map (fun (r : Gop.grule) -> Array.length r.body) g.rules in
  let blocked = Array.make nr false in
  let active_sup =
    Array.init nr (fun i ->
        List.length g.overrulers.(i) + List.length g.defeaters.(i))
  in
  let fired = Array.make nr false in
  let queue = Queue.create () in
  let fires = ref [] in
  let round = ref 0 in
  let derive a pol =
    match Gop.Values.value v a with
    | Logic.Interp.Undefined ->
      Gop.Values.set v a pol;
      Queue.add (a, pol) queue
    | Logic.Interp.True ->
      if not pol then
        Diag.fail
          (Diag.Internal_invariant
             { where = "Vfix.run_incremental"; atom = a; existing = true;
               derived = false })
    | Logic.Interp.False ->
      if pol then
        Diag.fail
          (Diag.Internal_invariant
             { where = "Vfix.run_incremental"; atom = a; existing = false;
               derived = true })
  in
  let try_fire i =
    if (not fired.(i)) && missing.(i) = 0 && active_sup.(i) = 0 then begin
      fired.(i) <- true;
      fires := (i, !round) :: !fires;
      derive g.rules.(i).head g.rules.(i).head_pol
    end
  in
  let block j =
    if not blocked.(j) then begin
      blocked.(j) <- true;
      List.iter
        (fun i ->
          active_sup.(i) <- active_sup.(i) - 1;
          try_fire i)
        g.suppresses.(j)
    end
  in
  for i = 0 to nr - 1 do
    try_fire i
  done;
  while not (Queue.is_empty queue) do
    Budget.tick budget;
    incr round;
    let a, pol = Queue.pop queue in
    let sat_rules = if pol then g.by_body_pos.(a) else g.by_body_neg.(a) in
    let blk_rules = if pol then g.by_body_neg.(a) else g.by_body_pos.(a) in
    List.iter
      (fun i ->
        missing.(i) <- missing.(i) - 1;
        try_fire i)
      sat_rules;
    List.iter block blk_rules
  done;
  (v, List.rev !fires)

let lfp ?budget g = fst (run_incremental ?budget g)
let trace ?budget g = snd (run_incremental ?budget g)

let least_model ?(engine = `Incremental) ?budget g =
  let v =
    match engine with
    | `Incremental -> lfp ?budget g
    | `Naive -> lfp_naive ?budget g
  in
  Gop.Values.to_interp g v
