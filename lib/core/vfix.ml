(* Pure V(I): the heads of the rules that fire under I.  For a consistent
   I the result is consistent: two complementary-headed rules cannot both
   be unsuppressed unless one is blocked, and a blocked rule's body is
   never satisfied by a consistent interpretation. *)
let step (g : Gop.t) v =
  let next = Gop.Values.create g in
  Array.iteri
    (fun i (r : Gop.grule) ->
      if
        Status.applicable g v i
        && (not (Status.overruled g v i))
        && not (Status.defeated g v i)
      then Gop.Values.set next r.head r.head_pol)
    g.rules;
  next

let lfp_naive ?(budget = Budget.unlimited) (g : Gop.t) =
  let rec go v =
    Budget.check budget;
    let v' = step g v in
    if Gop.Values.equal v v' then v else go v'
  in
  go (Gop.Values.create g)

type conflict = { atom : int; derived : bool }

(* Incremental counting engine, restartable from any consistent partial
   assignment.  Invariants:
   - missing.(i): body literals of rule i not (yet) true under v;
   - blocked.(i): some body literal of rule i is false under v;
   - active_sup.(i): suppressors (overrulers + defeaters) of i not yet
     blocked;
   - a rule fires (derives its head) when missing = 0 and active_sup = 0.
   Monotonicity (Lemma 1) makes all three evolve in one direction only,
   which is also why restarting from a seed is sound: the counters are
   initialised by one scan of the program against the seed, and the queue
   then processes only the newly derived literals.

   A derivation that contradicts the seed (or lands on a [frozen]
   undefined atom) is reported through [on_conflict], which must raise:
   from the empty seed it is an internal invariant violation, from a
   search's partial assignment it is an ordinary conflict that prunes the
   subtree. *)
let run ?(budget = Budget.unlimited) ~frozen ~on_conflict (g : Gop.t) seed =
  Budget.check budget;
  let nr = Gop.n_rules g in
  let v = Gop.Values.copy seed in
  let missing = Array.make nr 0 in
  let blocked = Array.make nr false in
  Array.iteri
    (fun i (r : Gop.grule) ->
      let m = ref 0 in
      Array.iter
        (fun l ->
          match Status.lit_value v l with
          | Logic.Interp.True -> ()
          | Logic.Interp.Undefined -> incr m
          | Logic.Interp.False ->
            blocked.(i) <- true;
            incr m)
        r.body;
      missing.(i) <- !m)
    g.rules;
  let count_active = List.fold_left (fun n j -> if blocked.(j) then n else n + 1) 0 in
  let active_sup =
    Array.init nr (fun i ->
        count_active g.overrulers.(i) + count_active g.defeaters.(i))
  in
  let fired = Array.make nr false in
  let queue = Queue.create () in
  let fires = ref [] in
  let round = ref 0 in
  let derive a pol =
    match Gop.Values.value v a with
    | Logic.Interp.Undefined ->
      if frozen a then on_conflict { atom = a; derived = pol }
      else begin
        Gop.Values.set v a pol;
        Queue.add (a, pol) queue
      end
    | Logic.Interp.True -> if not pol then on_conflict { atom = a; derived = pol }
    | Logic.Interp.False -> if pol then on_conflict { atom = a; derived = pol }
  in
  let try_fire i =
    if (not fired.(i)) && missing.(i) = 0 && active_sup.(i) = 0 then begin
      fired.(i) <- true;
      fires := (i, !round) :: !fires;
      derive g.rules.(i).head g.rules.(i).head_pol
    end
  in
  let block j =
    if not blocked.(j) then begin
      blocked.(j) <- true;
      List.iter
        (fun i ->
          active_sup.(i) <- active_sup.(i) - 1;
          try_fire i)
        g.suppresses.(j)
    end
  in
  for i = 0 to nr - 1 do
    try_fire i
  done;
  while not (Queue.is_empty queue) do
    Budget.tick budget;
    incr round;
    let a, pol = Queue.pop queue in
    let sat_rules = if pol then g.by_body_pos.(a) else g.by_body_neg.(a) in
    let blk_rules = if pol then g.by_body_neg.(a) else g.by_body_pos.(a) in
    List.iter
      (fun i ->
        missing.(i) <- missing.(i) - 1;
        try_fire i)
      sat_rules;
    List.iter block blk_rules
  done;
  (v, List.rev !fires)

let no_frozen _ = false

let run_incremental ?budget (g : Gop.t) =
  run ?budget ~frozen:no_frozen
    ~on_conflict:(fun { atom; derived } ->
      Diag.fail
        (Diag.Internal_invariant
           { where = "Vfix.run_incremental"; atom; existing = not derived;
             derived }))
    g (Gop.Values.create g)

exception Conflicted of conflict

let propagate ?budget ?(frozen = no_frozen) (g : Gop.t) seed =
  match
    run ?budget ~frozen ~on_conflict:(fun c -> raise (Conflicted c)) g seed
  with
  | v, _fires -> Ok v
  | exception Conflicted c -> Error c

let lfp ?budget g = fst (run_incremental ?budget g)

(* Fixpoint repair: the lfp of [I |-> seed ∪ V(I)].  When the seed is
   contained in the true lfp (the caller unset every atom a mutation
   could have touched), monotonicity pins this to the true lfp: the lfp
   L satisfies seed ∪ V(L) = L, so the seeded fixpoint is ≤ L; and it
   is a prefixpoint of V containing ∅, so ≥ L by Knaster–Tarski.  A
   conflict means the seed was {e not} below the lfp — non-monotone
   damage the cone analysis missed — and we recompute from scratch
   rather than return anything partial. *)
let repair ?budget (g : Gop.t) ~seed =
  match propagate ?budget g seed with
  | Ok v -> `Repaired v
  | Error _ -> `Recomputed (lfp ?budget g)
let trace ?budget g = snd (run_incremental ?budget g)

let least_model ?(engine = `Incremental) ?budget g =
  let v =
    match engine with
    | `Incremental -> lfp ?budget g
    | `Naive -> lfp_naive ?budget g
  in
  Gop.Values.to_interp g v
