(** The component partial order of an ordered program (paper, Definition 1).

    Components are identified by dense integer ids.  [lt a b] is the
    paper's [a < b]: [a] is {e more specific} (lower) than [b] and inherits
    [b]'s rules; rules of [a] may overrule rules of [b].  The order is
    strict: irreflexive, antisymmetric, transitive (we store the transitive
    closure of the declared pairs and reject cycles). *)

type t

val make : n:int -> pairs:(int * int) list -> (t, string) result
(** [make ~n ~pairs] builds the order over ids [0 .. n-1] from declared
    pairs [(lo, hi)] meaning [lo < hi].  Returns [Error _] if the closure
    would make some [a < a] (a cycle), or if an id is out of range. *)

val size : t -> int

val lt : t -> int -> int -> bool
(** Strict order [a < b] (transitively closed). *)

val leq : t -> int -> int -> bool
(** [a < b] or [a = b]. *)

val incomparable : t -> int -> int -> bool
(** The paper's [a <> b]: distinct and neither [a < b] nor [b < a]. *)

val above : t -> int -> int list
(** [above t a]: all [b] with [a <= b], ascending (includes [a]) — the
    components whose rules are visible from [a] (used to form [C*]). *)

val below : t -> int -> int list
(** All [b] with [b <= a], ascending (includes [a]). *)

val minimal : t -> int list
(** Ids with nothing below them (most specific components). *)

val maximal : t -> int list
(** Ids with nothing above them (most general components). *)
