(** Semantics of negative programs (paper, Section 4).

    A negative program is a plain rule set whose heads may be negative.
    The {e 3-level version} [3V(C)] is the ordered program

    {v <{ -B_C, C+, C- }, { C- < C+, C+ < -B_C, C- < -B_C }> v}

    where [C+] holds the seminegative rules of [C] plus the reflexive
    rules, and [C-] holds the rules with negative heads — read as
    {e exceptions} to the general rules of [C+].  Definition 10 takes the
    models / assumption-free models / stable models of [C] to be those of
    [3V(C)] in [C-].

    Definition 11 restates the same semantics directly, without ordered
    programs; Theorem 2 asserts the equivalence, which the test suite
    checks both on the paper's examples and by property on random
    programs. *)

val exceptions_component : string
(** ["exceptions"] — the paper's [C-]. *)

val general_component : string
(** ["general"] — the paper's [C+]. *)

val cwa_component : string
(** ["cwa"] — the paper's [-B_C]. *)

val three_level : Logic.Rule.t list -> Program.t
(** The [3V(C)] construction. *)

val ground_3v :
  ?grounder:[ `Naive | `Relevant ] -> ?depth:int -> Logic.Rule.t list -> Gop.t
(** [3V(C)] grounded at the exceptions component [C-]. *)

(** {1 Definition 10 — semantics via the 3-level version} *)

val is_model : ?depth:int -> Logic.Rule.t list -> Logic.Interp.t -> bool
val is_assumption_free : ?depth:int -> Logic.Rule.t list -> Logic.Interp.t -> bool
val stable_models : ?depth:int -> ?limit:int -> Logic.Rule.t list -> Logic.Interp.t list
val least_model : ?depth:int -> Logic.Rule.t list -> Logic.Interp.t

(** {1 Definition 11 — direct semantics}

    These work on the ground program and use only classical notions: an
    interpretation [I] is a model iff every ground rule [r] has
    [value(H(r)) >= value(B(r))] or an {e exception}; an assumption set is
    a subset of [I+] in the sense of [SZ].

    Two corrections (both forced by Theorem 2, both documented with
    counterexamples in the [deviations] test suite and EXPERIMENTS.md):

    - the exception clause: a {e false} head is excused by an exception
      rule with {e true} body (the paper's literal clause), while an
      {e undefined} head is excused by an exception rule whose body is
      merely {e not false} — mirroring Definition 3(b) just as the
      literal clause mirrors 3(a);
    - assumption sets range over all of [I], not just [I+]: under the
      corrected enabled version (Definition 8 — see {!Model}), a
      closed-world fact overruled by a non-blocked positive rule grounds
      nothing, so a negative literal can rest on assumptions too. *)

val direct_is_model : Logic.Rule.t list -> Logic.Interp.t -> bool
(** [direct_is_model ground_rules i] — Definition 11(a) on an explicitly
    ground program. *)

val direct_is_assumption_free : Logic.Rule.t list -> Logic.Interp.t -> bool
(** Definition 11(b): model with no non-empty assumption subset of [I+]. *)

val direct_stable_models : ?limit:int -> Logic.Rule.t list -> Logic.Interp.t list
(** Definition 11(c): maximal assumption-free models, by exhaustive
    enumeration over the ground atoms (exponential; for small programs). *)

val ground_program : ?depth:int -> Logic.Rule.t list -> Logic.Rule.t list
(** Naive grounding of a negative program (builtins evaluated away),
    suitable input for the [direct_*] functions. *)
