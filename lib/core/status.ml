open Logic

let lit_value (v : Gop.Values.t) (a, pol) =
  match Gop.Values.value v a, pol with
  | Interp.Undefined, _ -> Interp.Undefined
  | Interp.True, true | Interp.False, false -> Interp.True
  | Interp.True, false | Interp.False, true -> Interp.False

let applicable (g : Gop.t) v i =
  Array.for_all (fun l -> lit_value v l = Interp.True) g.rules.(i).body

let head_holds (g : Gop.t) v i =
  let r = g.rules.(i) in
  lit_value v (r.head, r.head_pol) = Interp.True

let applied g v i = applicable g v i && head_holds g v i

let blocked (g : Gop.t) v i =
  Array.exists (fun l -> lit_value v l = Interp.False) g.rules.(i).body

let overruled (g : Gop.t) v i =
  List.exists (fun j -> not (blocked g v j)) g.overrulers.(i)

let defeated (g : Gop.t) v i =
  List.exists (fun j -> not (blocked g v j)) g.defeaters.(i)

let suppressed g v i = overruled g v i || defeated g v i

type report = {
  rule : Rule.t;
  component : string;
  applicable : bool;
  applied : bool;
  blocked : bool;
  overruled : bool;
  defeated : bool;
}

let report g v i =
  { rule = Gop.rule_src g i;
    component = Program.component_name g.Gop.program g.Gop.rules.(i).comp;
    applicable = applicable g v i;
    applied = applied g v i;
    blocked = blocked g v i;
    overruled = overruled g v i;
    defeated = defeated g v i
  }

let report_all g interp =
  let v, _extra = Gop.Values.of_interp g interp in
  List.init (Gop.n_rules g) (report g v)

let pp_report ppf r =
  let flags =
    List.filter_map
      (fun (b, name) -> if b then Some name else None)
      [ (r.applicable, "applicable");
        (r.applied, "applied");
        (r.blocked, "blocked");
        (r.overruled, "overruled");
        (r.defeated, "defeated")
      ]
  in
  Format.fprintf ppf "[%s] %a: %s" r.component Rule.pp r.rule
    (if flags = [] then "none" else String.concat ", " flags)
