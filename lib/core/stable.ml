open Logic

(* Branch atoms: atoms that occur as rule heads with the polarities they
   occur with.  Atoms already decided by the least fixpoint are fixed, and
   an assumption-free model consists solely of head literals, so nothing
   else can ever be defined. *)
let branch_space (g : Gop.t) seed =
  let n = Gop.n_atoms g in
  let pos_head = Array.make n false in
  let neg_head = Array.make n false in
  Array.iter
    (fun (r : Gop.grule) ->
      if r.head_pol then pos_head.(r.head) <- true
      else neg_head.(r.head) <- true)
    g.Gop.rules;
  List.filter_map
    (fun a ->
      if Gop.Values.defined seed a then None
      else
        match pos_head.(a), neg_head.(a) with
        | false, false -> None
        | p, n -> Some (a, p, n))
    (List.init n Fun.id)

(* Fail-first branch ordering: decide the most constrained atoms first.
   The static score is the atom's occurrence count over rule heads and
   bodies — the more rules mention an atom, the more propagation and
   conflict detection a decision on it triggers.  Ties break on the atom
   id, keeping the whole enumeration deterministic. *)
let order_branch (g : Gop.t) branch =
  let occ = Array.make (Gop.n_atoms g) 0 in
  Array.iter
    (fun (r : Gop.grule) ->
      occ.(r.head) <- occ.(r.head) + 1;
      Array.iter (fun (a, _) -> occ.(a) <- occ.(a) + 1) r.body)
    g.Gop.rules;
  List.sort
    (fun (a, _, _) (b, _, _) -> compare (-occ.(a), a) (-occ.(b), b))
    branch

(* Support pruning: a decided literal needs at least one rule about it
   that could still be applied in some extension of the current partial
   assignment — not blocked, and no body atom frozen to undefined.  Both
   conditions are monotone along a branch (false values and frozen atoms
   persist), so once the last such rule dies the literal can never be
   grounded by the enabled version: the subtree holds no assumption-free
   model.  Seed and propagated literals are exempt — the rule that derived
   them stays applicable and unsuppressed in every extension. *)
let groundable (g : Gop.t) ~frozen v a pol =
  List.exists
    (fun i ->
      let r = g.Gop.rules.(i) in
      r.head_pol = pol
      && Array.for_all
           (fun (b, bp) ->
             match Status.lit_value v (b, bp) with
             | Interp.True -> true
             | Interp.False -> false
             | Interp.Undefined -> not frozen.(b))
           r.body)
    g.Gop.by_head.(a)

type search = {
  g : Gop.t;
  branch : (int * bool * bool) array;
  budget : Budget.t;
  stats : Counters.t;
  dec : Gop.Values.t;  (** least-fixpoint seed + current decisions *)
  frozen : bool array;  (** atoms decided to stay undefined *)
  mutable decided : (int * bool) list;  (** explicit true/false decisions *)
  full : unit -> bool;
  emit : Gop.Values.t -> unit;
}

(* One search node: re-run the counting engine from the decisions, prune
   on conflict or lost support, skip branch atoms the propagation already
   forced, and otherwise branch three ways on the next open atom —
   undefined first, then true, then false, so the first leaf reached is
   the least model, as in the naive enumeration. *)
let rec node s i =
  Budget.tick s.budget;
  s.stats.nodes <- s.stats.nodes + 1;
  if not (s.full ()) then begin
    match
      Vfix.propagate ~budget:s.budget ~frozen:(fun a -> s.frozen.(a)) s.g s.dec
    with
    | Error _ -> s.stats.prunes <- s.stats.prunes + 1
    | Ok v ->
      if
        not
          (List.for_all
             (fun (a, pol) -> groundable s.g ~frozen:s.frozen v a pol)
             s.decided)
      then s.stats.prunes <- s.stats.prunes + 1
      else begin
        let n = Array.length s.branch in
        let rec next j =
          if j >= n then None
          else
            let a, _, _ = s.branch.(j) in
            if Gop.Values.defined v a then begin
              if not (Gop.Values.defined s.dec a) then
                s.stats.forced <- s.stats.forced + 1;
              next (j + 1)
            end
            else if s.frozen.(a) then next (j + 1)
            else Some j
        in
        match next i with
        | None ->
          s.stats.leaves <- s.stats.leaves + 1;
          s.emit v
        | Some j ->
          let a, can_pos, can_neg = s.branch.(j) in
          s.frozen.(a) <- true;
          node s (j + 1);
          s.frozen.(a) <- false;
          if can_pos then begin
            Gop.Values.set s.dec a true;
            s.decided <- (a, true) :: s.decided;
            node s (j + 1);
            s.decided <- List.tl s.decided;
            Gop.Values.unset s.dec a
          end;
          if can_neg then begin
            Gop.Values.set s.dec a false;
            s.decided <- (a, false) :: s.decided;
            node s (j + 1);
            s.decided <- List.tl s.decided;
            Gop.Values.unset s.dec a
          end
      end
  end

let assumption_free_models ?limit ?(budget = Budget.unlimited) ?stats
    (g : Gop.t) =
  (* Anytime: exhaustion mid-search (at a node or inside a propagation)
     surrenders the models found so far, tagged with the reason.  The
     search order is deterministic, so a partial result is a prefix of
     the unbudgeted enumeration. *)
  let stats = match stats with Some s -> s | None -> Counters.create () in
  let acc = ref [] in
  let count = ref 0 in
  try
    let seed = Vfix.lfp ~budget g in
    let branch = Array.of_list (order_branch g (branch_space g seed)) in
    let s =
      { g;
        branch;
        budget;
        stats;
        dec = Gop.Values.copy seed;
        frozen = Array.make (Gop.n_atoms g) false;
        decided = [];
        full =
          (fun () ->
            match limit with
            | Some l -> !count >= l
            | None -> false);
        emit =
          (fun v ->
            if Model.is_assumption_free_v g v then begin
              incr count;
              stats.models <- stats.models + 1;
              acc := Gop.Values.to_interp g v :: !acc
            end)
      }
    in
    node s 0;
    Budget.Complete (List.rev !acc)
  with Budget.Exhausted r -> Budget.Partial (List.rev !acc, r)

let maximal models =
  List.filter
    (fun m ->
      not
        (List.exists
           (fun m' -> (not (Interp.equal m m')) && Interp.subset m m')
           models))
    models

let stable_models ?limit ?budget ?stats g =
  Budget.map maximal (assumption_free_models ?limit ?budget ?stats g)

(* The pre-propagation enumerator: assign every undecided head atom and
   check [Model.is_assumption_free] only at complete leaves.  It visits
   the full 3^n assignment tree, which is exactly why it stays: it is the
   differential-testing oracle for the pruned search above (same model
   sets, same counts under [?limit]) and the baseline of the benchmark
   trajectory — not dead code. *)
module Naive = struct
  let assumption_free_models ?limit ?(budget = Budget.unlimited) ?stats
      (g : Gop.t) =
    let stats = match stats with Some s -> s | None -> Counters.create () in
    let acc = ref [] in
    let count = ref 0 in
    try
      let seed = Vfix.lfp ~budget g in
      let branch = Array.of_list (branch_space g seed) in
      let full () =
        match limit with
        | Some l -> !count >= l
        | None -> false
      in
      let v = Gop.Values.copy seed in
      let check () =
        stats.leaves <- stats.leaves + 1;
        let interp = Gop.Values.to_interp g v in
        if Model.is_assumption_free g interp then begin
          incr count;
          stats.models <- stats.models + 1;
          acc := interp :: !acc
        end
      in
      let rec go i =
        Budget.tick budget;
        stats.nodes <- stats.nodes + 1;
        if not (full ()) then
          if i >= Array.length branch then check ()
          else begin
            let a, can_pos, can_neg = branch.(i) in
            go (i + 1);
            if can_pos then begin
              Gop.Values.set v a true;
              go (i + 1);
              Gop.Values.unset v a
            end;
            if can_neg then begin
              Gop.Values.set v a false;
              go (i + 1);
              Gop.Values.unset v a
            end
          end
      in
      go 0;
      Budget.Complete (List.rev !acc)
    with Budget.Exhausted r -> Budget.Partial (List.rev !acc, r)

  let stable_models ?limit ?budget ?stats g =
    Budget.map maximal (assumption_free_models ?limit ?budget ?stats g)
end

(* Boolean queries over the stable models are not anytime: an answer
   computed from a truncated enumeration would be unsound, so budget
   exhaustion propagates as [Budget.Exhausted]. *)
let all_stable ?budget g = Budget.complete_exn (stable_models ?budget g)

let cautious ?budget g l =
  List.for_all (fun m -> Interp.holds m l) (all_stable ?budget g)

let brave ?budget g l =
  List.exists (fun m -> Interp.holds m l) (all_stable ?budget g)

let cautious_consequences ?budget g =
  match all_stable ?budget g with
  | [] -> Interp.empty (* unreachable: the least model is assumption-free *)
  | m :: rest ->
    List.fold_left
      (fun acc m' ->
        Interp.fold
          (fun a b acc ->
            match Interp.value m' a with
            | Interp.True when b -> acc
            | Interp.False when not b -> acc
            | _ -> Interp.unset acc a)
          acc acc)
      m rest

let is_stable ?budget g interp =
  Model.is_assumption_free g interp
  &&
  let others = Budget.complete_exn (assumption_free_models ?budget g) in
  not
    (List.exists
       (fun m -> (not (Interp.equal interp m)) && Interp.subset interp m)
       others)
