open Logic

(* Branch atoms: atoms that occur as rule heads with the polarities they
   occur with.  Atoms already decided by the least fixpoint are fixed. *)
let branch_space (g : Gop.t) seed =
  let n = Gop.n_atoms g in
  let pos_head = Array.make n false in
  let neg_head = Array.make n false in
  Array.iter
    (fun (r : Gop.grule) ->
      if r.head_pol then pos_head.(r.head) <- true
      else neg_head.(r.head) <- true)
    g.Gop.rules;
  List.filter_map
    (fun a ->
      if Gop.Values.defined seed a then None
      else
        match pos_head.(a), neg_head.(a) with
        | false, false -> None
        | p, n -> Some (a, p, n))
    (List.init n Fun.id)

let assumption_free_models ?limit ?(budget = Budget.unlimited) (g : Gop.t) =
  (* Anytime: exhaustion mid-search surrenders the models found so far,
     tagged with the reason.  The search order is deterministic, so a
     partial result is a prefix of the unbudgeted enumeration. *)
  let acc = ref [] in
  let count = ref 0 in
  try
    let seed = Vfix.lfp ~budget g in
    let branch = Array.of_list (branch_space g seed) in
    let full () =
      match limit with
      | Some l -> !count >= l
      | None -> false
    in
    let v = Gop.Values.copy seed in
    let check () =
      let interp = Gop.Values.to_interp g v in
      if Model.is_assumption_free g interp then begin
        incr count;
        acc := interp :: !acc
      end
    in
    let rec go i =
      Budget.tick budget;
      if not (full ()) then
        if i >= Array.length branch then check ()
        else begin
          let a, can_pos, can_neg = branch.(i) in
          go (i + 1);
          if can_pos then begin
            Gop.Values.set v a true;
            go (i + 1);
            Gop.Values.unset v a
          end;
          if can_neg then begin
            Gop.Values.set v a false;
            go (i + 1);
            Gop.Values.unset v a
          end
        end
    in
    go 0;
    Budget.Complete (List.rev !acc)
  with Budget.Exhausted r -> Budget.Partial (List.rev !acc, r)

let maximal models =
  List.filter
    (fun m ->
      not
        (List.exists
           (fun m' -> (not (Interp.equal m m')) && Interp.subset m m')
           models))
    models

let stable_models ?limit ?budget g =
  Budget.map maximal (assumption_free_models ?limit ?budget g)

(* Boolean queries over the stable models are not anytime: an answer
   computed from a truncated enumeration would be unsound, so budget
   exhaustion propagates as [Budget.Exhausted]. *)
let all_stable ?budget g = Budget.complete_exn (stable_models ?budget g)

let cautious ?budget g l =
  List.for_all (fun m -> Interp.holds m l) (all_stable ?budget g)

let brave ?budget g l =
  List.exists (fun m -> Interp.holds m l) (all_stable ?budget g)

let cautious_consequences ?budget g =
  match all_stable ?budget g with
  | [] -> Interp.empty (* unreachable: the least model is assumption-free *)
  | m :: rest ->
    List.fold_left
      (fun acc m' ->
        Interp.fold
          (fun a b acc ->
            match Interp.value m' a with
            | Interp.True when b -> acc
            | Interp.False when not b -> acc
            | _ -> Interp.unset acc a)
          acc acc)
      m rest

let is_stable ?budget g interp =
  Model.is_assumption_free g interp
  &&
  let others = Budget.complete_exn (assumption_free_models ?budget g) in
  not
    (List.exists
       (fun m -> (not (Interp.equal interp m)) && Interp.subset interp m)
       others)
