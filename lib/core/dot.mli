(** Graphviz (DOT) export: the component order and derivation graphs.

    [olp check --dot] and [olp explain --dot] emit these; pipe into
    [dot -Tsvg] to visualise a knowledge base's inheritance structure or
    why a literal holds. *)

val poset : Program.t -> string
(** The component order as a digraph: an edge [a -> b] per covering pair
    [a < b] (more specific below, pointing at what it refines). *)

val derivation : Gop.t -> Logic.Literal.t -> string
(** The goal-directed dependency neighbourhood of a ground literal,
    annotated with the least model:

    - literal nodes are green (holds), red (complement holds) or grey
      (undefined);
    - each relevant rule is a box labelled with its component, with solid
      edges from its body literals and a bold edge to its head;
    - a rule box is filled when the rule fired, dashed when it is
      suppressed (overruled/defeated) and dotted when blocked. *)
