(** Total and exhaustive models (paper, Definition 5, Proposition 2).

    A model [M] is {e total} when no atom is undefined, and {e exhaustive}
    when no proper superset of [M] is a model.  Every total model is
    exhaustive; the converse fails, and total models need not exist (the
    paper's program [P2]).

    Totality and exhaustiveness are relative to an atom space.  The
    default is the {e active base} (atoms occurring in the ground rules):
    over the full Herbrand base, any atom mentioned in no rule can be added
    to any model with either sign, so no model would be exhaustive without
    deciding every such free atom.  Pass [~base:`Full] for the paper's
    literal reading.

    The superset searches are exponential in the number of undefined
    atoms; they are meant for analysis and testing, not for large
    programs. *)

val is_total : ?base:[ `Active | `Full ] -> Gop.t -> Logic.Interp.t -> bool

val is_exhaustive :
  ?base:[ `Active | `Full ] -> ?budget:Budget.t -> Gop.t -> Logic.Interp.t ->
  bool
(** [M] is a model and no proper superset of [M] (over the chosen atom
    space) is a model.  Budget exhaustion raises [Budget.Exhausted] (the
    boolean answer is not anytime). *)

val extend :
  ?base:[ `Active | `Full ] -> ?budget:Budget.t -> Gop.t -> Logic.Interp.t ->
  Logic.Interp.t
(** Proposition 2: some exhaustive model containing the given model
    (returns the input when it is already exhaustive).  Raises
    [Invalid_argument] if the input is not a model and [Budget.Exhausted]
    when the budget runs out. *)

val total_models :
  ?limit:int -> ?budget:Budget.t -> ?stats:Counters.t -> Gop.t ->
  Logic.Interp.t list Budget.anytime
(** All total models over the active base, by the branch-and-propagate
    search (seeded with the least fixpoint of [V], conflict pruning via
    {!Vfix.propagate}, fail-first atom order, true before false).  Models
    come in {e search order} — first discovered first, deterministic —
    so [?limit:k] is the first [k] of the unlimited enumeration and a
    [Partial] result is a prefix of it.  [?stats] accumulates search
    effort ({!Counters.t}). *)

(** The pre-propagation enumerator over complete assignments of the active
    base — the differential-testing oracle for {!val:total_models} (same
    model set, same counts under [?limit], different order) and the
    baseline of the benchmark trajectory. *)
module Naive : sig
  val total_models :
    ?limit:int -> ?budget:Budget.t -> ?stats:Counters.t -> Gop.t ->
    Logic.Interp.t list Budget.anytime
  (** Models in the naive search order: atoms in active-base order, true
      before false. *)
end
