(* Re-export so the public API surface is [Ordered.Diag]; the
   implementation lives below the [ground]/[datalog] layers, which also
   consume it. *)
include Governor.Diag
