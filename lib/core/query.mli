(** Non-ground queries against the least model.

    A query literal with variables asks for every ground instantiation
    that the least model makes true; a conjunctive query threads the
    substitution through all its literals (shared variables join). *)

val ask : ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> Logic.Interp.value
(** Ground convenience: the literal's value in the least model. *)

val answers :
  ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> Logic.Subst.t list
(** All substitutions [s] (over the query's variables) such that [s]
    applied to the query is true in the least model, in a deterministic
    order.  A ground query yields [[]] or [[empty]]. *)

val answers_conj :
  ?budget:Budget.t -> Gop.t -> Logic.Literal.t list -> Logic.Subst.t list
(** Conjunctive queries; builtin comparison literals in the conjunction
    are evaluated once their arguments are bound (a non-ground builtin
    after substitution raises [Diag.Error (Nonground_builtin _)]). *)

val holds_instances :
  ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> Logic.Literal.t list
(** The true ground instances of the query, i.e. [answers] applied back
    to the query literal. *)
