open Logic

type support = { rule : Rule.t; component : string }

type obstacle =
  | Not_applicable of Literal.t list
  | Blocked of Literal.t
  | Overruled_by of support
  | Defeated_by of support

type candidate = {
  rule : Rule.t;
  component : string;
  obstacles : obstacle list;
}

type t =
  | Holds of { literal : Literal.t; via : support; body : Literal.t list }
  | Complement_holds of { literal : Literal.t; via : support }
  | Unsupported of { literal : Literal.t; candidates : candidate list }

let support_of (g : Gop.t) i =
  { rule = Gop.rule_src g i;
    component = Program.component_name g.Gop.program g.Gop.rules.(i).comp
  }

let lit_value (g : Gop.t) v (l : Literal.t) =
  match Gop.atom_id g l.atom with
  | None -> Interp.Undefined
  | Some a -> (
    match Gop.Values.value v a, l.pol with
    | Interp.Undefined, _ -> Interp.Undefined
    | Interp.True, true | Interp.False, false -> Interp.True
    | _ -> Interp.False)

let obstacles_of (g : Gop.t) v i =
  let r = g.Gop.rules.(i) in
  let body_lits =
    Array.to_list (Array.map (fun (a, pol) -> Literal.make pol g.Gop.atoms.(a)) r.body)
  in
  let blocked_lit =
    List.find_opt (fun l -> lit_value g v l = Interp.False) body_lits
  in
  let unmet = List.filter (fun l -> lit_value g v l <> Interp.True) body_lits in
  let over =
    List.filter_map
      (fun j ->
        if not (Status.blocked g v j) then Some (Overruled_by (support_of g j))
        else None)
      g.Gop.overrulers.(i)
  in
  let defs =
    List.filter_map
      (fun j ->
        if not (Status.blocked g v j) then Some (Defeated_by (support_of g j))
        else None)
      g.Gop.defeaters.(i)
  in
  let applicability =
    match blocked_lit with
    | Some l -> [ Blocked l ]
    | None -> if unmet = [] then [] else [ Not_applicable unmet ]
  in
  applicability @ over @ defs

let explain (g : Gop.t) (l : Literal.t) =
  let v = Vfix.lfp g in
  match lit_value g v l with
  | Interp.True ->
    (* Find an applied, unsuppressed rule with this head. *)
    let a = Option.get (Gop.atom_id g l.atom) in
    let firing =
      List.find_opt
        (fun i ->
          g.Gop.rules.(i).head_pol = l.pol
          && Status.applied g v i
          && (not (Status.overruled g v i))
          && not (Status.defeated g v i))
        g.Gop.by_head.(a)
    in
    (match firing with
    | Some i ->
      Holds
        { literal = l;
          via = support_of g i;
          body =
            Array.to_list
              (Array.map
                 (fun (b, pol) -> Literal.make pol g.Gop.atoms.(b))
                 g.Gop.rules.(i).body)
        }
    | None ->
      (* The least model only contains derived literals, so this cannot
         happen; report as unsupported defensively. *)
      Unsupported { literal = l; candidates = [] })
  | Interp.False -> (
    let a = Option.get (Gop.atom_id g l.atom) in
    let firing =
      List.find_opt
        (fun i ->
          g.Gop.rules.(i).head_pol = not l.pol && Status.applied g v i)
        g.Gop.by_head.(a)
    in
    match firing with
    | Some i -> Complement_holds { literal = l; via = support_of g i }
    | None -> Unsupported { literal = l; candidates = [] })
  | Interp.Undefined ->
    let candidates =
      match Gop.atom_id g l.atom with
      | None -> []
      | Some a ->
        List.filter_map
          (fun i ->
            if g.Gop.rules.(i).head_pol = l.pol then
              Some
                { rule = Gop.rule_src g i;
                  component =
                    Program.component_name g.Gop.program g.Gop.rules.(i).comp;
                  obstacles = obstacles_of g v i
                }
            else None)
          g.Gop.by_head.(a)
    in
    Unsupported { literal = l; candidates }

let pp_support ppf (s : support) =
  Format.fprintf ppf "%a [component %s]" Rule.pp s.rule s.component

let pp_obstacle ppf = function
  | Not_applicable lits ->
    Format.fprintf ppf "not applicable (unmet: %a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Literal.pp)
      lits
  | Blocked l -> Format.fprintf ppf "blocked (complement of %a holds)" Literal.pp l
  | Overruled_by s -> Format.fprintf ppf "overruled by %a" pp_support s
  | Defeated_by s -> Format.fprintf ppf "defeated by %a" pp_support s

let pp ppf = function
  | Holds { literal; via; body } ->
    Format.fprintf ppf "@[<v2>%a holds: derived by %a" Literal.pp literal
      pp_support via;
    if body <> [] then
      Format.fprintf ppf "@,from %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Literal.pp)
        body;
    Format.fprintf ppf "@]"
  | Complement_holds { literal; via } ->
    Format.fprintf ppf "%a does not hold: the complement was derived by %a"
      Literal.pp literal pp_support via
  | Unsupported { literal; candidates = [] } ->
    Format.fprintf ppf "%a is undefined: no rule can derive it" Literal.pp
      literal
  | Unsupported { literal; candidates } ->
    Format.fprintf ppf "@[<v2>%a is undefined:" Literal.pp literal;
    List.iter
      (fun c ->
        Format.fprintf ppf "@,@[<v2>rule %a [component %s]:" Rule.pp c.rule
          c.component;
        List.iter (fun o -> Format.fprintf ppf "@,- %a" pp_obstacle o) c.obstacles;
        Format.fprintf ppf "@]")
      candidates;
    Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
