(** Rule statuses with respect to an interpretation (paper, Definition 2).

    Given an interpretation [I] for [P] in [C] and a rule
    [r in ground(C-star)]:

    - [r] is {e applicable} if [B(r) <= I];
    - {e applied} if applicable and [H(r) in I];
    - {e blocked} if some [A in B(r)] has [-A in I];
    - {e overruled} if some non-blocked rule [r'] with [H(r') = -H(r)] has
      [C(r') < C(r)];
    - {e defeated} if some non-blocked rule [r'] with [H(r') = -H(r)] has
      [C(r') <> C(r)] or [C(r') = C(r)]. *)

val lit_value : Gop.Values.t -> int * bool -> Logic.Interp.value
(** Truth value of an encoded body literal [(atom, polarity)] under an
    encoded assignment. *)

val applicable : Gop.t -> Gop.Values.t -> int -> bool
val applied : Gop.t -> Gop.Values.t -> int -> bool
val blocked : Gop.t -> Gop.Values.t -> int -> bool
val overruled : Gop.t -> Gop.Values.t -> int -> bool
val defeated : Gop.t -> Gop.Values.t -> int -> bool

val suppressed : Gop.t -> Gop.Values.t -> int -> bool
(** Overruled or defeated — the rule cannot fire in [V] (Definition 4). *)

type report = {
  rule : Logic.Rule.t;
  component : string;
  applicable : bool;
  applied : bool;
  blocked : bool;
  overruled : bool;
  defeated : bool;
}

val report : Gop.t -> Gop.Values.t -> int -> report
val report_all : Gop.t -> Logic.Interp.t -> report list
(** Reports for every ground rule w.r.t. a symbolic interpretation. *)

val pp_report : Format.formatter -> report -> unit
