open Logic

(* Definition 3 on an encoded assignment; [extra] literals (atoms outside
   the ground program) satisfy both conditions vacuously. *)
let check_conditions (g : Gop.t) v =
  let bad = ref [] in
  let name i = Program.component_name g.Gop.program g.Gop.rules.(i).comp in
  (* (a): defined literals must not be contradicted, except through
     blocking or overruling by an applied rule. *)
  Array.iteri
    (fun a _atom ->
      if Gop.Values.defined v a then begin
        let pol = Gop.Values.value v a = Interp.True in
        List.iter
          (fun i ->
            if g.Gop.rules.(i).head_pol = not pol then
              (* H(r_i) = -A *)
              let ok =
                Status.blocked g v i
                || List.exists
                     (fun j -> Status.applied g v j)
                     g.Gop.overrulers.(i)
              in
              if not ok then
                bad :=
                  Format.asprintf
                    "condition (a): %a is in M but rule %a [%s] is neither \
                     blocked nor overruled by an applied rule"
                    Literal.pp
                    (Literal.make pol g.Gop.atoms.(a))
                    Rule.pp (Gop.rule_src g i) (name i)
                  :: !bad)
          g.Gop.by_head.(a)
      end
      else
        (* (b): undefined atoms must have every applicable rule about them
           overruled or defeated. *)
        List.iter
          (fun i ->
            if
              Status.applicable g v i
              && (not (Status.overruled g v i))
              && not (Status.defeated g v i)
            then
              bad :=
                Format.asprintf
                  "condition (b): atom %a is undefined but rule %a [%s] is \
                   applicable and neither overruled nor defeated"
                  Atom.pp g.Gop.atoms.(a) Rule.pp (Gop.rule_src g i) (name i)
                :: !bad)
          g.Gop.by_head.(a))
    g.Gop.atoms;
  List.rev !bad

let violations g interp =
  let v, _extra = Gop.Values.of_interp g interp in
  check_conditions g v

let is_model_v g v = check_conditions g v = []
let is_model g interp = violations g interp = []

(* Definition 8 says "all applied rules"; that makes Theorem 1(a) false
   when an applied rule is itself overruled or defeated (its head would
   count as grounded even though Definition 6 discounts suppressed rules
   — see the deviations test suite for a two-component counterexample).
   The default is therefore the corrected enabled version: applied and
   not suppressed, mirroring conditions (b)/(c) of Definition 6.  The
   paper's literal reading stays available for comparison. *)
let enabled_version ?(semantics = `Corrected) (g : Gop.t) v =
  List.filter
    (fun i ->
      Status.applied g v i
      &&
      match semantics with
      | `Literal -> true
      | `Corrected ->
        (not (Status.overruled g v i)) && not (Status.defeated g v i))
    (List.init (Gop.n_rules g) Fun.id)

let enabled_fixpoint ?semantics (g : Gop.t) v =
  (* Positive fixpoint over the enabled rules, literals as atomic units.
     No contradiction can arise (Lemma 2): every applied head is in M,
     which is consistent. *)
  let enabled = enabled_version ?semantics g v in
  let out = Gop.Values.create g in
  let missing =
    List.map (fun i -> (i, ref (Array.length g.Gop.rules.(i).body))) enabled
  in
  let watch_pos = Array.make (Gop.n_atoms g) [] in
  let watch_neg = Array.make (Gop.n_atoms g) [] in
  List.iter
    (fun (i, cell) ->
      Array.iter
        (fun (a, pol) ->
          if pol then watch_pos.(a) <- (i, cell) :: watch_pos.(a)
          else watch_neg.(a) <- (i, cell) :: watch_neg.(a))
        g.Gop.rules.(i).body)
    missing;
  let queue = Queue.create () in
  let derive a pol =
    if not (Gop.Values.defined out a) then begin
      Gop.Values.set out a pol;
      Queue.add (a, pol) queue
    end
  in
  List.iter
    (fun (i, cell) ->
      if !cell = 0 then derive g.Gop.rules.(i).head g.Gop.rules.(i).head_pol)
    missing;
  while not (Queue.is_empty queue) do
    let a, pol = Queue.pop queue in
    let watchers = if pol then watch_pos.(a) else watch_neg.(a) in
    List.iter
      (fun (i, cell) ->
        decr cell;
        if !cell = 0 then derive g.Gop.rules.(i).head g.Gop.rules.(i).head_pol)
      watchers
  done;
  out

let is_assumption_free_v ?semantics g v =
  check_conditions g v = []
  && Gop.Values.equal (enabled_fixpoint ?semantics g v) v

let is_assumption_free ?semantics g interp =
  let v, extra = Gop.Values.of_interp g interp in
  extra = [] && is_assumption_free_v ?semantics g v

(* Definition 6, as a greatest fixpoint over subsets of M.  F(X) keeps the
   literals A of X such that every rule with head A is non-applicable,
   overruled, defeated, or has a body literal in X; assumption sets are
   exactly the non-empty X with X <= F(X), and the gfp is their union. *)
let largest_assumption_set_v (g : Gop.t) v =
  let in_x = Array.make (Gop.n_atoms g) false in
  (* Start from all of M (as literal markers per atom; M has at most one
     literal per atom). *)
  Array.iteri (fun a _ -> in_x.(a) <- Gop.Values.defined v a) g.Gop.atoms;
  let lit_in_x (a, pol) =
    in_x.(a) && Gop.Values.value v a = (if pol then Interp.True else Interp.False)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun a _ ->
        if in_x.(a) then begin
          let pol = Gop.Values.value v a = Interp.True in
          let keeps =
            List.for_all
              (fun i ->
                let r = g.Gop.rules.(i) in
                r.head_pol <> pol
                || (not (Status.applicable g v i))
                || Status.overruled g v i || Status.defeated g v i
                || Array.exists lit_in_x r.body)
              g.Gop.by_head.(a)
          in
          if not keeps then begin
            in_x.(a) <- false;
            changed := true
          end
        end)
      g.Gop.atoms
  done;
  let acc = ref [] in
  Array.iteri
    (fun a _ ->
      if in_x.(a) then
        acc :=
          Literal.make (Gop.Values.value v a = Interp.True) g.Gop.atoms.(a)
          :: !acc)
    g.Gop.atoms;
  List.rev !acc

let largest_assumption_set g interp =
  let v, extra = Gop.Values.of_interp g interp in
  (* Literals over atoms unknown to the program vacuously satisfy
     Definition 6 (no rules at all), so they always belong. *)
  largest_assumption_set_v g v @ extra

let is_assumption_set (g : Gop.t) interp candidate =
  if candidate = [] then false
  else begin
    let v, extra = Gop.Values.of_interp g interp in
    let in_interp l =
      List.exists (Literal.equal l) extra
      ||
      match Gop.atom_id g l.Literal.atom with
      | Some a ->
        Gop.Values.value v a
        = (if l.Literal.pol then Interp.True else Interp.False)
      | None -> false
    in
    List.for_all in_interp candidate
    && List.for_all
         (fun (l : Literal.t) ->
           match Gop.atom_id g l.atom with
           | None -> true (* no rules: conditions hold vacuously *)
           | Some a ->
             List.for_all
               (fun i ->
                 let r = g.Gop.rules.(i) in
                 r.head_pol <> l.pol
                 || (not (Status.applicable g v i))
                 || Status.overruled g v i || Status.defeated g v i
                 || Array.exists
                      (fun (b, pol) ->
                        List.exists
                          (fun (x : Literal.t) ->
                            x.pol = pol && Atom.equal x.atom g.Gop.atoms.(b))
                          candidate)
                      r.body)
               g.Gop.by_head.(a))
         candidate
  end
