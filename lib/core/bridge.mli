(** The classical bridges of Section 3: the {e ordered version} [OV(C)]
    and the {e extended version} [EV(C)] of a (semi)negative program [C].

    [OV(C) = <{-B_C, C}, {C < -B_C}>]: a top component asserting the
    closed-world assumption ["every element of the Herbrand base is false
    unless its truth is proved"] as non-ground negative facts
    [-p(X1, ..., Xn)] (one per predicate, so the size stays polynomial),
    with the program component below it.

    [EV(C)] additionally gives the program component a {e reflexive rule}
    [p(X1, ..., Xn) :- p(X1, ..., Xn)] per predicate.

    Results bridged (and property-tested against the [Datalog] library):
    - Proposition 3: every model of [OV(C)] in [C] is a 3-valued model of
      [C] (converse false — Example 7);
    - Proposition 4: assumption-free models of [OV(C)] in [C] = 3-valued
      founded models of [C];
    - Corollary 1: stable models coincide;
    - Proposition 5: models of [EV(C)] in [C] = 3-valued models of [C];
      stable models of [OV] and [EV] versions coincide. *)

val program_component : string
(** Name of the component holding the program rules: ["main"]. *)

val cwa_component : string
(** Name of the closed-world component: ["cwa"]. *)

val cwa_rules : Logic.Rule.t list -> Logic.Rule.t list
(** The closed-world component's rules for a program: one non-ground
    negative fact per (non-builtin) predicate. *)

val reflexive_rules : Logic.Rule.t list -> Logic.Rule.t list
(** One reflexive rule [p(X...) :- p(X...)] per (non-builtin) predicate. *)

val ov : Logic.Rule.t list -> Program.t
(** The ordered version.  Accepts any negative program (Section 4 reuses
    the construction); builtin comparison predicates get no CWA rule. *)

val ev : Logic.Rule.t list -> Program.t
(** The extended version ([ov] plus reflexive rules). *)

val ground_ov :
  ?grounder:[ `Naive | `Relevant ] -> ?depth:int -> Logic.Rule.t list -> Gop.t
(** [OV(C)] grounded at the program component. *)

val ground_ev :
  ?grounder:[ `Naive | `Relevant ] -> ?depth:int -> Logic.Rule.t list -> Gop.t

val interp_of_atom_set :
  base:Logic.Atom.t list -> Logic.Atom.Set.t -> Logic.Interp.t
(** Total interpretation: atoms of the set true, the rest of the base
    false (how a classical stable model reads as a literal set). *)
