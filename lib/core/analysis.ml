open Logic

type resolution =
  | Overruling of { winner : Program.component_id }
  | Defeating

type conflict = {
  rule_a : Rule.t;
  comp_a : Program.component_id;
  rule_b : Rule.t;
  comp_b : Program.component_id;
  resolution : resolution;
}

(* Rename one rule's variables apart before unifying heads. *)
let heads_conflict (ra : Rule.t) (rb : Rule.t) =
  let rb = Rule.rename (fun v -> v ^ "'") rb in
  let ha = Rule.head ra and hb = Rule.head rb in
  Literal.is_positive ha <> Literal.is_positive hb
  && Unify.atom ha.Literal.atom hb.Literal.atom <> None

let conflicts prog comp =
  let poset = Program.poset prog in
  let view = Array.of_list (Program.view prog comp) in
  let acc = ref [] in
  for i = 0 to Array.length view - 1 do
    for j = i + 1 to Array.length view - 1 do
      let ca, ra = view.(i) and cb, rb = view.(j) in
      if heads_conflict ra rb then begin
        let resolution =
          if Poset.lt poset ca cb then Overruling { winner = ca }
          else if Poset.lt poset cb ca then Overruling { winner = cb }
          else Defeating
        in
        acc :=
          { rule_a = ra; comp_a = ca; rule_b = rb; comp_b = cb; resolution }
          :: !acc
      end
    done
  done;
  List.rev !acc

let conflict_free prog comp = conflicts prog comp = []

let defeat_prone prog comp =
  List.filter
    (fun c ->
      match c.resolution with
      | Defeating -> true
      | Overruling _ -> false)
    (conflicts prog comp)

let pp_conflict prog ppf c =
  let name = Program.component_name prog in
  match c.resolution with
  | Overruling { winner } ->
    let w_rule, w_comp, l_rule, l_comp =
      if winner = c.comp_a then (c.rule_a, c.comp_a, c.rule_b, c.comp_b)
      else (c.rule_b, c.comp_b, c.rule_a, c.comp_a)
    in
    Format.fprintf ppf "%a [%s] can overrule %a [%s]" Rule.pp w_rule
      (name w_comp) Rule.pp l_rule (name l_comp)
  | Defeating ->
    Format.fprintf ppf "%a [%s] and %a [%s] can defeat each other" Rule.pp
      c.rule_a (name c.comp_a) Rule.pp c.rule_b (name c.comp_b)
