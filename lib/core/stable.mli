(** Assumption-free and stable models of an ordered program in a component
    (paper, Definitions 7 and 9).

    A {e stable} model is a maximal assumption-free model; uniqueness is
    not guaranteed (Example 5).  Every assumption-free model contains the
    least fixpoint of [V] (Theorem 1(b)) and consists solely of literals
    that occur as ground rule heads (each of its literals needs an applied
    supporting rule), so the enumeration branches on head literals outside
    the least fixpoint — exponential in their number in the worst case.

    {b Anytime semantics.}  The enumerations take a {!Budget.t} and return
    a {!Budget.anytime} value: [Complete models] when the search finished,
    or [Partial (models, reason)] when the budget ran out first.  The
    search order is deterministic, so the models of a [Partial] result are
    a prefix of the unbudgeted enumeration (for {!stable_models}, the
    maximal elements of such a prefix — each returned model is
    assumption-free, but a later, larger model may have been missed).
    Boolean queries ({!cautious}, {!brave}, {!is_stable}) are {e not}
    anytime — a truncated enumeration could flip their answer — so they
    raise [Budget.Exhausted] instead. *)

val assumption_free_models :
  ?limit:int -> ?budget:Budget.t -> Gop.t -> Logic.Interp.t list Budget.anytime
(** All assumption-free models (at most [limit] if given), in a
    deterministic order; a complete enumeration always contains the least
    model. *)

val stable_models :
  ?limit:int -> ?budget:Budget.t -> Gop.t -> Logic.Interp.t list Budget.anytime
(** The maximal assumption-free models.  [limit] caps the underlying
    assumption-free enumeration (so with a limit the result may miss
    stable models but every returned model is assumption-free and maximal
    among those enumerated); the same caveat applies to [Partial]
    results. *)

val is_stable : ?budget:Budget.t -> Gop.t -> Logic.Interp.t -> bool
(** Assumption-free and not properly contained in another assumption-free
    model. *)

val cautious : ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> bool
(** Skeptical entailment: the ground literal holds in {e every} stable
    model.  [false] when there is no stable model... which cannot happen:
    the least model is assumption-free, so a stable model always exists —
    but the literal may simply fail somewhere. *)

val brave : ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> bool
(** Credulous entailment: the ground literal holds in {e some} stable
    model. *)

val cautious_consequences : ?budget:Budget.t -> Gop.t -> Logic.Interp.t
(** The literals common to all stable models (always a superset of the
    least model, by Theorem 1(b)). *)
