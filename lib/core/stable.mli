(** Assumption-free and stable models of an ordered program in a component
    (paper, Definitions 7 and 9).

    A {e stable} model is a maximal assumption-free model; uniqueness is
    not guaranteed (Example 5).  Every assumption-free model contains the
    least fixpoint of [V] (Theorem 1(b)) and consists solely of literals
    that occur as ground rule heads (each of its literals needs an applied
    supporting rule), so the enumeration branches on head literals outside
    the least fixpoint — exponential in their number in the worst case.

    {b Search.}  The default enumerator is a branch-and-propagate search:
    after every branching decision it re-runs the incremental counting
    engine ({!Vfix.propagate}) from the partial assignment, forcing the
    implied values (which need not be branched on at all) and pruning the
    subtree on a conflict — a derivation contradicting a decision, or a
    decided literal whose every potential supporting rule has died — long
    before a complete leaf.  Branching follows a fail-first heuristic
    (most-mentioned atoms first).  {!Naive} keeps the pre-propagation
    enumerator as a differential-testing oracle and benchmark baseline.

    {b Enumeration order.}  All enumeration entry points ({!val:assumption_free_models},
    {!val:stable_models}, their {!Naive} counterparts and
    {!Exhaustive.total_models}) return models in {e search order} — first
    discovered first, a deterministic function of the ground program
    alone.  Consequently [?limit:k] returns exactly the first [k] elements
    of the unlimited enumeration, and the first assumption-free model is
    always the least model.  The pruned and naive searches order their
    branches differently, so they enumerate the {e same set} of models in
    {e different} orders; only the search order of the enumerator actually
    used is guaranteed.

    {b Anytime semantics.}  The enumerations take a {!Budget.t} and return
    a {!Budget.anytime} value: [Complete models] when the search finished,
    or [Partial (models, reason)] when the budget ran out first — whether
    at a search node or in the middle of a propagation.  The search order
    is deterministic, so the models of a [Partial] result are a prefix of
    the unbudgeted enumeration (for {!val:stable_models}, the maximal
    elements of such a prefix — each returned model is assumption-free,
    but a later, larger model may have been missed).  Boolean queries
    ({!cautious}, {!brave}, {!is_stable}) are {e not} anytime — a
    truncated enumeration could flip their answer — so they raise
    [Budget.Exhausted] instead.

    [?stats] exposes the search effort ({!Counters.t}: nodes, leaves,
    pruned subtrees, forced branches, models); the benchmark suite uses it
    to track the pruned-vs-naive node ratio in [BENCH_PR2.json]. *)

val assumption_free_models :
  ?limit:int -> ?budget:Budget.t -> ?stats:Counters.t -> Gop.t ->
  Logic.Interp.t list Budget.anytime
(** All assumption-free models (at most [limit] if given), in search
    order; a complete enumeration always starts with the least model. *)

val stable_models :
  ?limit:int -> ?budget:Budget.t -> ?stats:Counters.t -> Gop.t ->
  Logic.Interp.t list Budget.anytime
(** The maximal assumption-free models, in the search order of the
    underlying assumption-free enumeration.  [limit] caps that underlying
    enumeration (so with a limit the result may miss stable models but
    every returned model is assumption-free and maximal among those
    enumerated); the same caveat applies to [Partial] results. *)

(** The pre-propagation enumerator: branch on every undecided head atom
    and check assumption-freeness only at complete leaves.  Kept as the
    differential-testing oracle for the pruned search — same model sets,
    same counts under [?limit], vastly more search nodes — and as the
    baseline of the benchmark trajectory. *)
module Naive : sig
  val assumption_free_models :
    ?limit:int -> ?budget:Budget.t -> ?stats:Counters.t -> Gop.t ->
    Logic.Interp.t list Budget.anytime
  (** Same model set as {!val:Stable.assumption_free_models}, in the naive
      search order (atom interning order, undefined/true/false). *)

  val stable_models :
    ?limit:int -> ?budget:Budget.t -> ?stats:Counters.t -> Gop.t ->
    Logic.Interp.t list Budget.anytime
end

val is_stable : ?budget:Budget.t -> Gop.t -> Logic.Interp.t -> bool
(** Assumption-free and not properly contained in another assumption-free
    model. *)

val cautious : ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> bool
(** Skeptical entailment: the ground literal holds in {e every} stable
    model.  [false] when there is no stable model... which cannot happen:
    the least model is assumption-free, so a stable model always exists —
    but the literal may simply fail somewhere. *)

val brave : ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> bool
(** Credulous entailment: the ground literal holds in {e some} stable
    model. *)

val cautious_consequences : ?budget:Budget.t -> Gop.t -> Logic.Interp.t
(** The literals common to all stable models (always a superset of the
    least model, by Theorem 1(b)). *)
