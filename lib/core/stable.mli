(** Assumption-free and stable models of an ordered program in a component
    (paper, Definitions 7 and 9).

    A {e stable} model is a maximal assumption-free model; uniqueness is
    not guaranteed (Example 5).  Every assumption-free model contains the
    least fixpoint of [V] (Theorem 1(b)) and consists solely of literals
    that occur as ground rule heads (each of its literals needs an applied
    supporting rule), so the enumeration branches on head literals outside
    the least fixpoint — exponential in their number in the worst case. *)

val assumption_free_models : ?limit:int -> Gop.t -> Logic.Interp.t list
(** All assumption-free models (at most [limit] if given), in a
    deterministic order; always contains the least model. *)

val stable_models : ?limit:int -> Gop.t -> Logic.Interp.t list
(** The maximal assumption-free models.  [limit] caps the underlying
    assumption-free enumeration (so with a limit the result may miss
    stable models but every returned model is assumption-free and maximal
    among those enumerated). *)

val is_stable : Gop.t -> Logic.Interp.t -> bool
(** Assumption-free and not properly contained in another assumption-free
    model. *)

val cautious : Gop.t -> Logic.Literal.t -> bool
(** Skeptical entailment: the ground literal holds in {e every} stable
    model.  [false] when there is no stable model... which cannot happen:
    the least model is assumption-free, so a stable model always exists —
    but the literal may simply fail somewhere. *)

val brave : Gop.t -> Logic.Literal.t -> bool
(** Credulous entailment: the ground literal holds in {e some} stable
    model. *)

val cautious_consequences : Gop.t -> Logic.Interp.t
(** The literals common to all stable models (always a superset of the
    least model, by Theorem 1(b)). *)
