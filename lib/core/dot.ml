open Logic

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let poset prog =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph components {\n  rankdir=BT;\n";
  let names = Program.component_names prog in
  Array.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" (escape n)))
    names;
  let p = Program.poset prog in
  let n = Array.length names in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if
        Poset.lt p a b
        && not
             (List.exists
                (fun c -> Poset.lt p a c && Poset.lt p c b)
                (List.init n Fun.id))
      then
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\" -> \"%s\";\n" (escape names.(a))
             (escape names.(b)))
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let derivation (g : Gop.t) (goal : Literal.t) =
  let v = Vfix.lfp g in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph derivation {\n  rankdir=BT;\n";
  (* Relevant sub-program: reuse Prove's closure via its public stats?  We
     rebuild a small closure here: literals reachable from the goal through
     rule bodies and suppressor-blocker dependencies. *)
  let seen_lit = Hashtbl.create 64 in
  let seen_rule = Hashtbl.create 64 in
  let queue = Queue.create () in
  let lit_id (l : Literal.t) = "L" ^ escape (Literal.to_string l) in
  let visit (l : Literal.t) =
    if not (Hashtbl.mem seen_lit l) then begin
      Hashtbl.add seen_lit l ();
      Queue.add l queue
    end
  in
  visit goal;
  while not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    match Gop.atom_id g l.atom with
    | None -> ()
    | Some a ->
      List.iter
        (fun i ->
          if g.Gop.rules.(i).head_pol = l.pol && not (Hashtbl.mem seen_rule i)
          then begin
            Hashtbl.add seen_rule i ();
            let r = Gop.rule_src g i in
            List.iter visit (Rule.body r);
            let suppressor j =
              List.iter
                (fun (b : Literal.t) -> visit (Literal.neg b))
                (Rule.body (Gop.rule_src g j))
            in
            List.iter suppressor g.Gop.overrulers.(i);
            List.iter suppressor g.Gop.defeaters.(i)
          end)
        g.Gop.by_head.(a)
  done;
  (* literal nodes, in deterministic order *)
  let lits =
    Hashtbl.fold (fun l () acc -> l :: acc) seen_lit []
    |> List.sort Literal.compare
  in
  List.iter
    (fun (l : Literal.t) ->
      let color =
        match Gop.atom_id g l.atom with
        | None -> "gray"
        | Some a -> (
          match Gop.Values.value v a, l.pol with
          | Interp.True, true | Interp.False, false -> "palegreen"
          | Interp.True, false | Interp.False, true -> "salmon"
          | Interp.Undefined, _ -> "gray90")
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  \"%s\" [label=\"%s\", style=filled, fillcolor=%s];\n"
           (lit_id l)
           (escape (Literal.to_string l))
           color))
    lits;
  (* rule nodes and edges, in deterministic order *)
  let rule_ids =
    Hashtbl.fold (fun i () acc -> i :: acc) seen_rule []
    |> List.sort Int.compare
  in
  List.iter
    (fun i ->
      let r = Gop.rule_src g i in
      let comp = Program.component_name g.Gop.program g.Gop.rules.(i).comp in
      let fired =
        Status.applied g v i
        && (not (Status.overruled g v i))
        && not (Status.defeated g v i)
      in
      let style =
        if fired then "filled"
        else if Status.blocked g v i then "dotted"
        else if Status.overruled g v i || Status.defeated g v i then "dashed"
        else "solid"
      in
      let rid = Printf.sprintf "R%d" i in
      Buffer.add_string buf
        (Printf.sprintf
           "  %s [shape=box, label=\"%s\", style=%s, fillcolor=lightyellow];\n"
           rid (escape comp) style);
      List.iter
        (fun (b : Literal.t) ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> %s;\n" (lit_id b) rid))
        (Rule.body r);
      Buffer.add_string buf
        (Printf.sprintf "  %s -> \"%s\" [style=bold];\n" rid
           (lit_id (Rule.head r))))
    rule_ids;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
