open Logic

type component_id = int

type t = {
  names : string array;
  rules : Rule.t list array;
  poset : Poset.t;
}

let make components order =
  let names = Array.of_list (List.map fst components) in
  let seen = Hashtbl.create 8 in
  let dup = ref None in
  Array.iter
    (fun n ->
      if Hashtbl.mem seen n && !dup = None then dup := Some n
      else Hashtbl.add seen n ())
    names;
  match !dup with
  | Some n -> Error (Printf.sprintf "duplicate component name %S" n)
  | None -> (
    let index = Hashtbl.create 8 in
    Array.iteri (fun i n -> Hashtbl.replace index n i) names;
    let resolve (lo, hi) =
      match Hashtbl.find_opt index lo, Hashtbl.find_opt index hi with
      | Some a, Some b -> Ok (a, b)
      | None, _ -> Error (Printf.sprintf "unknown component %S in order" lo)
      | _, None -> Error (Printf.sprintf "unknown component %S in order" hi)
    in
    let rec resolve_all acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match resolve p with
        | Ok q -> resolve_all (q :: acc) rest
        | Error e -> Error e)
    in
    match resolve_all [] order with
    | Error e -> Error e
    | Ok pairs -> (
      match Poset.make ~n:(Array.length names) ~pairs with
      | Error e -> Error e
      | Ok poset ->
        Ok
          { names;
            rules = Array.of_list (List.map snd components);
            poset
          }))

let make_exn components order =
  match make components order with
  | Ok t -> t
  | Error e -> invalid_arg ("Program.make: " ^ e)

let singleton rules = make_exn [ ("main", rules) ] []

let of_ast ast =
  match Lang.Ast.components ast with
  | exception Invalid_argument e -> Error e
  | comps ->
    let components =
      List.map (fun (c : Lang.Ast.component) -> (c.name, c.rules)) comps
    in
    make components (Lang.Ast.order_pairs ast)

let parse src =
  match Lang.Parser.parse_file src with
  | exception Lang.Lexer.Error (msg, pos) ->
    Error (Printf.sprintf "lexical error at %d:%d: %s" pos.line pos.col msg)
  | exception Lang.Parser.Error (msg, pos) ->
    Error (Printf.sprintf "syntax error at %d:%d: %s" pos.line pos.col msg)
  | ast -> of_ast ast

let parse_exn src =
  match parse src with
  | Ok t -> t
  | Error e -> invalid_arg ("Program.parse: " ^ e)

let n_components t = Array.length t.names
let component_names t = Array.copy t.names

let component_id t name =
  let rec find i =
    if i >= Array.length t.names then None
    else if String.equal t.names.(i) name then Some i
    else find (i + 1)
  in
  find 0

let component_id_exn t name =
  match component_id t name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Program.component_id: unknown %S" name)

let component_name t i = t.names.(i)
let rules_of t i = t.rules.(i)
let poset t = t.poset

let view t c =
  List.concat_map
    (fun j -> List.map (fun r -> (j, r)) t.rules.(j))
    (Poset.above t.poset c)

let all_rules t = List.concat (Array.to_list t.rules)

let add_rules t c extra =
  let rules = Array.copy t.rules in
  rules.(c) <- rules.(c) @ extra;
  { t with rules }

let to_ast t =
  let comps =
    Array.to_list
      (Array.mapi
         (fun i name ->
           Lang.Ast.Component { name; parents = []; rules = t.rules.(i) })
         t.names)
  in
  (* Emit the covering relation (transitive reduction), so printing and
     re-parsing reproduces the same poset without redundant pairs. *)
  let pairs = ref [] in
  let n = Array.length t.names in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if
        Poset.lt t.poset a b
        && not
             (List.exists
                (fun c -> Poset.lt t.poset a c && Poset.lt t.poset c b)
                (List.init n Fun.id))
      then pairs := (t.names.(a), t.names.(b)) :: !pairs
    done
  done;
  comps @ (if !pairs = [] then [] else [ Lang.Ast.Order (List.rev !pairs) ])

let pp ppf t = Lang.Ast.pp ppf (to_ast t)
