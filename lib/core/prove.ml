open Logic

(* Literal codes: 2 * atom + (1 if positive else 0). *)
let code a pol = (2 * a) + if pol then 1 else 0

type stats = {
  closure_literals : int;
  relevant_rules : int;
  total_rules : int;
}

(* Dependency closure from a goal literal code; returns the set of literal
   codes (as a bool array) and the list of relevant rule indices. *)
let closure ~budget (g : Gop.t) goal =
  let n = Gop.n_atoms g in
  let seen = Array.make (2 * n) false in
  let rule_in = Array.make (Gop.n_rules g) false in
  let queue = Queue.create () in
  let visit c =
    if not seen.(c) then begin
      seen.(c) <- true;
      Queue.add c queue
    end
  in
  visit goal;
  while not (Queue.is_empty queue) do
    Budget.tick budget;
    let c = Queue.pop queue in
    let a = c / 2 and pol = c mod 2 = 1 in
    List.iter
      (fun i ->
        let r = g.Gop.rules.(i) in
        if r.head_pol = pol && not rule_in.(i) then begin
          rule_in.(i) <- true;
          (* body literals *)
          Array.iter (fun (b, bp) -> visit (code b bp)) r.body;
          (* complements of suppressors' bodies *)
          let suppressor j =
            Array.iter
              (fun (b, bp) -> visit (code b (not bp)))
              g.Gop.rules.(j).body
          in
          List.iter suppressor g.Gop.overrulers.(i);
          List.iter suppressor g.Gop.defeaters.(i)
        end)
      g.Gop.by_head.(a)
  done;
  (seen, rule_in)

(* Counting fixpoint over a subset of the rules (mirrors Vfix's
   incremental engine, restricted to [rule_in]). *)
let restricted_lfp ~budget (g : Gop.t) rule_in =
  let nr = Gop.n_rules g in
  let v = Gop.Values.create g in
  let missing =
    Array.init nr (fun i -> Array.length g.Gop.rules.(i).body)
  in
  let blocked = Array.make nr false in
  let active_sup =
    Array.init nr (fun i ->
        List.length g.Gop.overrulers.(i) + List.length g.Gop.defeaters.(i))
  in
  let fired = Array.make nr false in
  let queue = Queue.create () in
  let derive a pol =
    if not (Gop.Values.defined v a) then begin
      Gop.Values.set v a pol;
      Queue.add (a, pol) queue
    end
  in
  let try_fire i =
    if
      rule_in.(i)
      && (not fired.(i))
      && missing.(i) = 0
      && active_sup.(i) = 0
    then begin
      fired.(i) <- true;
      derive g.Gop.rules.(i).head g.Gop.rules.(i).head_pol
    end
  in
  (* Blocking must track *all* rules (a suppressor need not be relevant
     itself to matter), so the block propagation is unrestricted. *)
  let block j =
    if not blocked.(j) then begin
      blocked.(j) <- true;
      List.iter
        (fun i ->
          active_sup.(i) <- active_sup.(i) - 1;
          try_fire i)
        g.Gop.suppresses.(j)
    end
  in
  for i = 0 to nr - 1 do
    try_fire i
  done;
  while not (Queue.is_empty queue) do
    Budget.tick budget;
    let a, pol = Queue.pop queue in
    List.iter
      (fun i ->
        missing.(i) <- missing.(i) - 1;
        try_fire i)
      (if pol then g.Gop.by_body_pos.(a) else g.Gop.by_body_neg.(a));
    List.iter block (if pol then g.Gop.by_body_neg.(a) else g.Gop.by_body_pos.(a))
  done;
  v

let holds_code ~budget (g : Gop.t) goal =
  let seen, rule_in = closure ~budget g goal in
  let v = restricted_lfp ~budget g rule_in in
  let a = goal / 2 and pol = goal mod 2 = 1 in
  let holds =
    match Gop.Values.value v a with
    | Interp.True -> pol
    | Interp.False -> not pol
    | Interp.Undefined -> false
  in
  let stats =
    { closure_literals = Array.fold_left (fun n b -> if b then n + 1 else n) 0 seen;
      relevant_rules =
        Array.fold_left (fun n b -> if b then n + 1 else n) 0 rule_in;
      total_rules = Gop.n_rules g
    }
  in
  (holds, stats)

let holds_with_stats ?(budget = Budget.unlimited) (g : Gop.t)
    (l : Literal.t) =
  if not (Literal.is_ground l) then
    invalid_arg "Prove.holds: literal must be ground";
  match Gop.atom_id g l.atom with
  | None ->
    ( false,
      { closure_literals = 0;
        relevant_rules = 0;
        total_rules = Gop.n_rules g
      } )
  | Some a -> holds_code ~budget g (code a l.pol)

let holds ?budget g l = fst (holds_with_stats ?budget g l)

let value ?budget g (l : Literal.t) =
  if holds ?budget g l then Interp.True
  else if holds ?budget g (Literal.neg l) then Interp.False
  else Interp.Undefined
