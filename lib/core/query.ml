open Logic

let ask (g : Gop.t) l = Interp.value_lit (Vfix.least_model g) l

let model_literals g =
  Interp.to_literals (Vfix.least_model g)

let match_against ~init pattern facts =
  List.filter_map (fun fact -> Unify.match_literal ~init pattern fact) facts

let answers (g : Gop.t) (l : Literal.t) =
  match_against ~init:Subst.empty l (model_literals g)

let answers_conj (g : Gop.t) conj =
  let facts = model_literals g in
  let step substs (l : Literal.t) =
    List.concat_map
      (fun s ->
        let l' = Subst.apply_literal s l in
        if Ground.Builtin.is_builtin_literal l' then
          if not (Literal.is_ground l') then
            invalid_arg
              (Printf.sprintf
                 "Query.answers_conj: unbound builtin literal %s"
                 (Literal.to_string l'))
          else
            match Ground.Builtin.eval_literal l' with
            | Some true -> [ s ]
            | Some false | None -> []
        else match_against ~init:s l' facts)
      substs
  in
  List.fold_left step [ Subst.empty ] conj

let holds_instances g l =
  List.map (fun s -> Subst.apply_literal s l) (answers g l)
