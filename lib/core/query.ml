open Logic

let ask ?budget (g : Gop.t) l =
  Interp.value_lit (Vfix.least_model ?budget g) l

let model_literals ?budget g = Interp.to_literals (Vfix.least_model ?budget g)

let match_against ~budget ~init pattern facts =
  List.filter_map
    (fun fact ->
      Budget.tick budget;
      Unify.match_literal ~init pattern fact)
    facts

let answers ?(budget = Budget.unlimited) (g : Gop.t) (l : Literal.t) =
  match_against ~budget ~init:Subst.empty l (model_literals ~budget g)

let answers_conj ?(budget = Budget.unlimited) (g : Gop.t) conj =
  let facts = model_literals ~budget g in
  let step substs (l : Literal.t) =
    List.concat_map
      (fun s ->
        Budget.tick budget;
        let l' = Subst.apply_literal s l in
        if Ground.Builtin.is_builtin_literal l' then
          if not (Literal.is_ground l') then
            Diag.fail
              (Diag.Nonground_builtin
                 { literal = Literal.to_string l';
                   context = "Query.answers_conj"
                 })
          else
            match Ground.Builtin.eval_literal l' with
            | Some true -> [ s ]
            | Some false | None -> []
        else match_against ~budget ~init:s l' facts)
      substs
  in
  List.fold_left step [ Subst.empty ] conj

let holds_instances ?budget g l =
  List.map (fun s -> Subst.apply_literal s l) (answers ?budget g l)
