(** Explanations: why a literal is (or is not) in the least model.

    The least fixpoint of [V] derives a literal through a chain of fired
    rules; an undefined literal is explained by the fate of each candidate
    rule — not applicable, blocked, overruled or defeated, each pointing at
    the responsible rule (the knowledge-base reading of the paper's
    overruling/defeating machinery: "the penguin does not fly {e because}
    the local rule overrules the inherited default"). *)

type support = {
  rule : Logic.Rule.t;
  component : string;  (** the component the firing rule comes from *)
}

type obstacle =
  | Not_applicable of Logic.Literal.t list
      (** body literals not satisfied by the least model *)
  | Blocked of Logic.Literal.t
      (** a body literal whose complement holds *)
  | Overruled_by of support
      (** a non-blocked contradicting rule in a more specific component *)
  | Defeated_by of support
      (** a non-blocked contradicting rule in an incomparable or the same
          component *)

type candidate = {
  rule : Logic.Rule.t;
  component : string;
  obstacles : obstacle list;  (** empty only for the firing rule *)
}

type t =
  | Holds of { literal : Logic.Literal.t; via : support; body : Logic.Literal.t list }
      (** the literal is in the least model, derived by [via] *)
  | Complement_holds of { literal : Logic.Literal.t; via : support }
      (** the complementary literal is in the least model *)
  | Unsupported of { literal : Logic.Literal.t; candidates : candidate list }
      (** undefined: every rule that could derive it is obstructed
          ([candidates] may be empty — no rule mentions the literal) *)

val explain : Gop.t -> Logic.Literal.t -> t
(** Explanation w.r.t. the least model of the ground ordered program. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
