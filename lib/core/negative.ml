open Logic

let exceptions_component = "exceptions"
let general_component = "general"
let cwa_component = "cwa"

let three_level rules =
  let general, exceptions = List.partition Rule.is_seminegative rules in
  Program.make_exn
    [ (exceptions_component, exceptions);
      (general_component, general @ Bridge.reflexive_rules rules);
      (cwa_component, Bridge.cwa_rules rules)
    ]
    [ (exceptions_component, general_component);
      (general_component, cwa_component);
      (exceptions_component, cwa_component)
    ]

let ground_3v ?grounder ?depth rules =
  let prog = three_level rules in
  Gop.ground ?grounder ?depth prog
    (Program.component_id_exn prog exceptions_component)

let is_model ?depth rules interp = Model.is_model (ground_3v ?depth rules) interp

let is_assumption_free ?depth rules interp =
  Model.is_assumption_free (ground_3v ?depth rules) interp

let stable_models ?depth ?limit rules =
  Budget.value (Stable.stable_models ?limit (ground_3v ?depth rules))

let least_model ?depth rules = Vfix.least_model (ground_3v ?depth rules)

(* ------------------------------------------------------------------ *)
(* Definition 11: the direct semantics                                 *)
(* ------------------------------------------------------------------ *)

let ground_program ?depth rules =
  (Ground.Grounder.naive ?depth rules).Ground.Grounder.rules

(* Definition 11(a), with the correction required for Theorem 2 to hold
   (see Test_deviations for the counterexample to the literal statement):
   a rule whose head is *false* needs an *applied* exception (a negative
   rule with complementary head and true body — mirroring Definition 3(a),
   "overruled by an applied rule"), while a rule whose head is *undefined*
   only needs a *non-blocked* exception (body not false — mirroring
   Definition 3(b), "overruled or defeated"). *)
let direct_is_model ground_rules interp =
  let exception_for head ~min_body =
    List.exists
      (fun (e : Rule.t) ->
        Literal.is_negative (Rule.head e)
        && Literal.equal (Rule.head e) (Literal.neg head)
        && Interp.compare_value
             (Interp.value_conj interp (Rule.body e))
             min_body
           >= 0)
      ground_rules
  in
  List.for_all
    (fun (r : Rule.t) ->
      let hv = Interp.value_lit interp (Rule.head r) in
      let bv = Interp.value_conj interp (Rule.body r) in
      Interp.compare_value hv bv >= 0
      ||
      match hv with
      | Interp.False -> exception_for (Rule.head r) ~min_body:Interp.True
      | Interp.Undefined ->
        exception_for (Rule.head r) ~min_body:Interp.Undefined
      | Interp.True -> false)
    ground_rules

(* Definition 11(b), corrected (see the deviations test suite).

   The paper — following [SZ] — lets assumption sets range over subsets
   of I+ only: a negative literal always has the (implicit) closed-world
   fact behind it.  That matches the literal Definition 8, under which an
   applied rule grounds its head even when suppressed; with the corrected
   Definition 8 (suppressed rules ground nothing — required for Theorem
   1(a) to hold) a closed-world fact that is overruled by a non-blocked
   positive rule no longer grounds its literal, and negative literals can
   be assumptions too.  The corrected direct conditions, expressed purely
   classically:

   - positive A in X: every rule with head A is non-applicable, or
     overruled (some negative rule with head -A has a body that is not
     false), or has a body literal in X (the implicit reflexive rule
     A :- A always satisfies the last clause, so it needs no case);
   - negative -A in X: every negative rule with head -A is non-applicable
     or has a body literal in X, {e and} the implicit closed-world fact
     -A is overruled: some rule with head A has a body that is not false
     (the implicit reflexive rule A :- A is blocked, since -A in I). *)
let largest_assumption_subset ground_rules interp =
  let exception_nonblocked head =
    List.exists
      (fun (e : Rule.t) ->
        Literal.is_negative (Rule.head e)
        && Literal.equal (Rule.head e) (Literal.neg head)
        && Interp.value_conj interp (Rule.body e) <> Interp.False)
      ground_rules
  in
  let positive_rule_nonblocked atom =
    List.exists
      (fun (r : Rule.t) ->
        Literal.is_positive (Rule.head r)
        && Atom.equal (Rule.head r).Literal.atom atom
        && Interp.value_conj interp (Rule.body r) <> Interp.False)
      ground_rules
  in
  let x = ref (Literal.Set.of_list (Interp.to_literals interp)) in
  let changed = ref true in
  while !changed do
    changed := false;
    Literal.Set.iter
      (fun a ->
        let keep =
          if Literal.is_positive a then
            List.for_all
              (fun (r : Rule.t) ->
                (not (Literal.equal (Rule.head r) a))
                || Interp.compare_value
                     (Interp.value_conj interp (Rule.body r))
                     Interp.Undefined
                   <= 0
                || exception_nonblocked a
                || List.exists (fun b -> Literal.Set.mem b !x) (Rule.body r))
              ground_rules
          else
            List.for_all
              (fun (r : Rule.t) ->
                (not (Literal.equal (Rule.head r) a))
                || Interp.compare_value
                     (Interp.value_conj interp (Rule.body r))
                     Interp.Undefined
                   <= 0
                || List.exists (fun b -> Literal.Set.mem b !x) (Rule.body r))
              ground_rules
            && positive_rule_nonblocked a.Literal.atom
        in
        if not keep then begin
          x := Literal.Set.remove a !x;
          changed := true
        end)
      !x
  done;
  Literal.Set.elements !x

let direct_is_assumption_free ground_rules interp =
  direct_is_model ground_rules interp
  && largest_assumption_subset ground_rules interp = []

let direct_stable_models ?limit ground_rules =
  let atoms =
    List.fold_left
      (fun acc (r : Rule.t) ->
        List.fold_left
          (fun acc (l : Literal.t) -> Atom.Set.add l.atom acc)
          (Atom.Set.add (Rule.head r).atom acc)
          (Rule.body r))
      Atom.Set.empty ground_rules
    |> Atom.Set.elements |> Array.of_list
  in
  let acc = ref [] in
  let count = ref 0 in
  let full () =
    match limit with
    | Some l -> !count >= l
    | None -> false
  in
  let rec go i m =
    if not (full ()) then
      if i >= Array.length atoms then begin
        if direct_is_assumption_free ground_rules m then begin
          incr count;
          acc := m :: !acc
        end
      end
      else begin
        go (i + 1) m;
        go (i + 1) (Interp.set m atoms.(i) true);
        go (i + 1) (Interp.set m atoms.(i) false)
      end
  in
  go 0 Interp.empty;
  let models = List.rev !acc in
  List.filter
    (fun m ->
      not
        (List.exists
           (fun m' -> (not (Interp.equal m m')) && Interp.subset m m')
           models))
    models
