open Logic

let program_component = "main"
let cwa_component = "cwa"

let program_predicates rules =
  let sg = Herbrand.signature_of_rules rules in
  List.filter
    (fun p -> not (Ground.Builtin.is_builtin p))
    sg.Herbrand.predicates

let generic_atom (p, arity) =
  Atom.make p (List.init arity (fun i -> Term.Var (Printf.sprintf "X%d" i)))

let cwa_rules rules =
  List.map
    (fun pa -> Rule.fact (Literal.neg_atom (generic_atom pa)))
    (program_predicates rules)

let reflexive_rules rules =
  List.map
    (fun pa ->
      let a = generic_atom pa in
      Rule.make (Literal.pos a) [ Literal.pos a ])
    (program_predicates rules)

let ov rules =
  Program.make_exn
    [ (program_component, rules); (cwa_component, cwa_rules rules) ]
    [ (program_component, cwa_component) ]

let ev rules =
  Program.make_exn
    [ (program_component, rules @ reflexive_rules rules);
      (cwa_component, cwa_rules rules)
    ]
    [ (program_component, cwa_component) ]

let ground_at prog ?grounder ?depth () =
  Gop.ground ?grounder ?depth prog
    (Program.component_id_exn prog program_component)

let ground_ov ?grounder ?depth rules = ground_at (ov rules) ?grounder ?depth ()
let ground_ev ?grounder ?depth rules = ground_at (ev rules) ?grounder ?depth ()

let interp_of_atom_set ~base set =
  List.fold_left
    (fun m a -> Interp.set m a (Atom.Set.mem a set))
    Interp.empty base
