type t = { n : int; lt : bool array array }

let make ~n ~pairs =
  let lt = Array.make_matrix n n false in
  let bad =
    List.find_opt (fun (a, b) -> a < 0 || a >= n || b < 0 || b >= n) pairs
  in
  match bad with
  | Some (a, b) -> Error (Printf.sprintf "order pair (%d, %d) out of range" a b)
  | None ->
    List.iter (fun (a, b) -> lt.(a).(b) <- true) pairs;
    (* Warshall transitive closure. *)
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if lt.(i).(k) then
          for j = 0 to n - 1 do
            if lt.(k).(j) then lt.(i).(j) <- true
          done
      done
    done;
    let cyclic = ref None in
    for i = 0 to n - 1 do
      if lt.(i).(i) && !cyclic = None then cyclic := Some i
    done;
    (match !cyclic with
    | Some i ->
      Error (Printf.sprintf "the component order has a cycle through id %d" i)
    | None -> Ok { n; lt })

let size t = t.n
let lt t a b = t.lt.(a).(b)
let leq t a b = a = b || t.lt.(a).(b)
let incomparable t a b = a <> b && (not t.lt.(a).(b)) && not t.lt.(b).(a)

let above t a =
  List.filter (fun b -> leq t a b) (List.init t.n Fun.id)

let below t a =
  List.filter (fun b -> leq t b a) (List.init t.n Fun.id)

let minimal t =
  List.filter
    (fun a -> not (List.exists (fun b -> t.lt.(b).(a)) (List.init t.n Fun.id)))
    (List.init t.n Fun.id)

let maximal t =
  List.filter
    (fun a -> not (List.exists (fun b -> t.lt.(a).(b)) (List.init t.n Fun.id)))
    (List.init t.n Fun.id)
