(** Resource budgets (deadline, steps, instances, cancellation) — see
    {!Governor.Budget} for the full documentation.  Re-exported here so
    users of the [Ordered] library need not depend on [Governor]
    directly. *)

include module type of struct
  include Governor.Budget
end
