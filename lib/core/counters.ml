(* Re-export so the public API surface is [Ordered.Counters]; the
   implementation lives below the [ground]/[datalog] layers, which also
   consume it. *)
include Governor.Counters
