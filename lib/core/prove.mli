(** Goal-directed evaluation of the least model.

    The paper (Section 5) refers to a proof procedure for ordered logic
    programs [LV]; this module provides one for the constructive
    semantics: deciding whether a ground literal belongs to [lfp V]
    without materialising the whole model.

    The procedure is a relevance-closure construction (magic sets adapted
    to ordered programs).  A goal literal [L] depends on:

    - the body literals of every rule with head [L] (to fire it), and
    - the {e complements} of the body literals of every overruler or
      defeater of such a rule (a suppressor only stops mattering once it
      is blocked, i.e. once some complement of its body is derived).

    The least fixpoint of [V] restricted to the rules whose heads lie in
    this dependency closure agrees with the full least fixpoint on every
    literal of the closure, because firing a relevant rule depends only on
    derived literals inside the closure (a suppressor need not fire to
    suppress — only its blockedness matters, and the literals that can
    block it are in the closure by construction). *)

val holds : ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> bool
(** [holds g l] iff the ground literal [l] is in the least model of [g].
    Returns [false] for literals over atoms the program never mentions.
    [budget] is ticked per closure/fixpoint derivation; exhaustion raises
    [Budget.Exhausted]. *)

val value : ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> Logic.Interp.value
(** Three-valued answer: [True] if the literal is in the least model,
    [False] if its complement is, [Undefined] otherwise. *)

type stats = {
  closure_literals : int;  (** literals in the dependency closure *)
  relevant_rules : int;  (** rules of the restricted subprogram *)
  total_rules : int;  (** rules in the full ground program *)
}

val holds_with_stats :
  ?budget:Budget.t -> Gop.t -> Logic.Literal.t -> bool * stats
(** Like {!holds}, also reporting how much of the program the closure
    touched (the benchmark suite uses this to show the goal-directed
    saving). *)
