(* Re-export so the public API surface is [Ordered.Budget]; the
   implementation lives below the [ground]/[datalog] layers, which also
   consume it. *)
include Governor.Budget
