(** Ground ordered programs: the grounding of [C*] for one viewpoint
    component [C], interned for the fixpoint engines.

    Every ground rule carries the component it comes from ([C(r)] in the
    paper).  For Definition 2 we precompute, for each rule [r], its
    {e overrulers} (rules [r'] with [H(r') = -H(r)] and [C(r') < C(r)]) and
    its {e defeaters} ([H(r') = -H(r)] and [C(r') <> C(r)] or
    [C(r') = C(r)]).  A non-blocked overruler makes [r] {e overruled}; a
    non-blocked defeater makes [r] {e defeated}; either way [r] is
    {e suppressed} and cannot fire in the ordered immediate transformation
    [V]. *)

type grule = {
  head : int;  (** head atom id *)
  head_pol : bool;  (** head polarity: [true] for [A], [false] for [-A] *)
  body : (int * bool) array;  (** body literals, deduplicated *)
  comp : Program.component_id;  (** [C(r)] *)
  name : string option;
      (** name of the source rule this instance came from, if named *)
}

type t = {
  program : Program.t;
  comp : Program.component_id;  (** the viewpoint component *)
  atoms : Logic.Atom.t array;  (** atom id -> atom *)
  ids : int Logic.Atom.Tbl.t;
  rules : grule array;
  by_head : int list array;  (** atom id -> rules with that head atom *)
  by_body_pos : int list array;  (** atom id -> rules with [A] in body *)
  by_body_neg : int list array;  (** atom id -> rules with [-A] in body *)
  overrulers : int list array;
  defeaters : int list array;
  suppresses : int list array;
      (** inverse adjacency: rules [r] overrules or defeats *)
  universe : Logic.Term.t list;
  active_base : Logic.Atom.t list;
  full_base : Logic.Atom.t list Lazy.t;
}

val ground :
  ?budget:Budget.t ->
  ?max_instances:int ->
  ?grounder:[ `Naive | `Relevant ] ->
  ?depth:int ->
  ?extra_constants:Logic.Term.t list ->
  Program.t ->
  Program.component_id ->
  t
(** Ground the view [C*] of the given component.  [`Naive] (default) is the
    reference semantics; [`Relevant] prunes rules with underivable bodies —
    faster, but see the caveat in {!Ground.Grounder}.  [max_instances]
    raises [Diag.Error (Grounding_overflow _)] — carrying the offending
    rule and the counts — when instantiation exceeds the cap (a guard
    against accidental blow-up on wide universes).  [budget] bounds the
    grounding work itself (deadline / steps / instances); exhaustion raises
    [Budget.Exhausted]. *)

val ground_groups :
  ?budget:Budget.t ->
  ?max_instances:int ->
  ?grounder:[ `Naive | `Relevant ] ->
  ?depth:int ->
  ?extra_constants:Logic.Term.t list ->
  Program.t ->
  Program.component_id ->
  (Program.component_id * Logic.Rule.t * Logic.Rule.t list) list
(** Like {!ground}, but stop before interning and keep provenance: one
    group [(component, source rule, surviving instances)] per view rule,
    in view order, deduplicated through one table shared across the whole
    view.  {!flatten_groups} of the result is exactly the tagged list
    {!ground} interns, so a caller that edits one group and re-interns
    gets a grounding bit-identical to grounding from scratch — the basis
    of incremental re-grounding ([Inc.Reground]). *)

val flatten_groups :
  (Program.component_id * Logic.Rule.t * Logic.Rule.t list) list ->
  (Program.component_id * Logic.Rule.t) list

val schema_universe :
  ?depth:int ->
  ?extra_constants:Logic.Term.t list ->
  Program.t ->
  Program.component_id ->
  Logic.Term.t list
(** The instantiation universe {!ground} uses for this view: the Herbrand
    universe of the {e schema} rules' signature (before instantiation and
    builtin filtering).  Two views with equal schema universes instantiate
    every shared rule identically. *)

val of_view :
  ?depth:int ->
  ?extra_constants:Logic.Term.t list ->
  Program.t ->
  Program.component_id ->
  (Program.component_id * Logic.Rule.t) list ->
  t
(** Intern an explicitly-given tagged view (used by transformations that
    construct ground views directly). *)

val n_atoms : t -> int
val n_rules : t -> int

val atom_id : t -> Logic.Atom.t -> int option

val rule_src : t -> int -> Logic.Rule.t
(** Decode rule [i] back to a symbolic ground rule. *)

type stats = {
  atoms : int;
  rules : int;
  body_literals : int;
  overruling_edges : int;
  defeating_edges : int;
}

val stats : t -> stats
(** Size diagnostics: the fixpoint engines cost
    [O(body_literals + overruling_edges + defeating_edges)] per run. *)

val pp_stats : Format.formatter -> stats -> unit

val find_rule : t -> Program.component_id -> Logic.Rule.t -> int option
(** Index of the ground instance of a given rule in a given component. *)

(** {1 Three-valued assignments over the interned atoms} *)

module Values : sig
  type gop := t

  type t
  (** Mutable dense 3-valued assignment (one slot per atom id). *)

  val create : gop -> t
  (** All atoms undefined. *)

  val copy : t -> t

  val value : t -> int -> Logic.Interp.value
  val set : t -> int -> bool -> unit
  (** Raises [Invalid_argument] on an inconsistent re-assignment. *)

  val unset : t -> int -> unit
  val defined : t -> int -> bool
  val equal : t -> t -> bool

  val of_interp : gop -> Logic.Interp.t -> t * Logic.Literal.t list
  (** Encode an interpretation; the second result lists literals over atoms
      that do not occur in the ground program (they take part in no rule,
      but make the interpretation non-assumption-free). *)

  val of_codes : int array -> t
  (** Adopt a raw code array — one slot per atom id, [0] undefined, [1]
      true, [2] false — as an assignment {e without copying}.  This is the
      bridge used by the compiled kernel ([Solve]), whose flat solver
      state is exactly this encoding: the model checks can then run on
      the live array with no per-leaf translation.  The caller must keep
      the codes in range. *)

  val to_interp : gop -> t -> Logic.Interp.t
end
