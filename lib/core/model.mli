(** Models of an ordered program in a component (paper, Definition 3),
    assumption sets (Definition 6), assumption-free models (Definition 7)
    and the enabled-version characterisation (Definition 8, Theorem 1(a)).

    An interpretation [M] is a {e model} for [P] in [C] iff

    - (a) for each literal [A in M], every rule [r] with [H(r) = -A] is
      either blocked or overruled by an {e applied} rule; and
    - (b) for each undefined atom [A], every {e applicable} rule [r] with
      [H(r) = A] or [H(r) = -A] is either overruled or defeated.

    [M] is {e assumption-free} iff no non-empty subset of [M] is an
    assumption set w.r.t. [M]; by Theorem 1(a) this holds iff [M] is the
    least fixpoint of the immediate-consequence transformation of the
    {e enabled version} [C^e] (the applied rules of [ground(C-star)]). *)

val is_model : Gop.t -> Logic.Interp.t -> bool
(** Definition 3.  Literals over atoms that occur in no ground rule are
    permitted (conditions (a)/(b) are vacuous for them). *)

val is_model_v : Gop.t -> Gop.Values.t -> bool
(** {!is_model} directly on an encoded assignment — the form used by the
    enumeration engines, which keep their candidates encoded and only
    convert accepted models to symbolic interpretations. *)

val violations : Gop.t -> Logic.Interp.t -> string list
(** Human-readable reasons why the interpretation fails Definition 3
    (empty iff {!is_model}). *)

val enabled_version :
  ?semantics:[ `Corrected | `Literal ] -> Gop.t -> Gop.Values.t -> int list
(** Indices of the enabled rules — the paper's [C^e] (Definition 8).
    [`Corrected] (default): applied and {e non-suppressed} — the paper
    admits every applied rule, but an applied rule that is overruled or
    defeated must not ground its head (Definition 6 discounts such
    rules), and with the literal reading Theorem 1(a) fails (see the
    deviations test suite).  [`Literal]: the paper's reading, kept for
    side-by-side comparison. *)

val enabled_fixpoint :
  ?semantics:[ `Corrected | `Literal ] ->
  Gop.t ->
  Gop.Values.t ->
  Gop.Values.t
(** [T^inf_{C^e}(0)] (Lemma 2): the least fixpoint of the positive
    immediate-consequence operator over the enabled rules, treating
    literals as atomic. *)

val is_assumption_free_v :
  ?semantics:[ `Corrected | `Literal ] -> Gop.t -> Gop.Values.t -> bool
(** {!is_assumption_free} directly on an encoded assignment (which, being
    encoded, cannot mention atoms outside the ground program). *)

val is_assumption_free :
  ?semantics:[ `Corrected | `Literal ] -> Gop.t -> Logic.Interp.t -> bool
(** Theorem 1(a): [M] is a model and [T^inf_{C^e}(0) = M].  Literals over
    atoms outside the ground program are themselves assumption sets, so
    their presence makes this [false].  With [`Corrected] (default) this
    agrees with {!largest_assumption_set} on every model; with
    [`Literal] the two can disagree — that disagreement is the paper's
    Theorem 1(a) failing as stated. *)

val largest_assumption_set : Gop.t -> Logic.Interp.t -> Logic.Literal.t list
(** Direct Definition 6: the union of all assumption sets w.r.t. the
    interpretation (assumption sets are closed under union), computed as a
    greatest fixpoint.  Empty iff no assumption set exists.  Independent of
    {!is_assumption_free}'s method — the two agree on models (Theorem 1(a)),
    which the test suite checks by property. *)

val is_assumption_set : Gop.t -> Logic.Interp.t -> Logic.Literal.t list -> bool
(** Definition 6 membership test for an explicit candidate set. *)
