open Logic

let parse_cell s =
  match int_of_string_opt s with
  | Some n -> Term.Int n
  | None -> Term.Sym s

let split_fields sep line =
  String.split_on_char sep line |> List.map String.trim

let facts_of_string ?(sep = '\t') ~rel doc =
  let lines = String.split_on_char '\n' doc in
  let rec go lineno arity acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then
        go (lineno + 1) arity acc rest
      else begin
        let cells = split_fields sep trimmed in
        let n = List.length cells in
        match arity with
        | Some a when a <> n ->
          Error
            (Printf.sprintf
               "line %d: expected %d field(s) for %s, found %d" lineno a rel n)
        | _ ->
          let fact =
            Rule.fact (Literal.pos (Atom.make rel (List.map parse_cell cells)))
          in
          go (lineno + 1) (Some n) (fact :: acc) rest
      end
  in
  go 1 None [] lines

let facts_of_file ?sep ~rel path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let doc =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    facts_of_string ?sep ~rel doc

let dump_relation ?(sep = '\t') ~pred interp =
  Interp.true_atoms interp
  |> List.filter (fun (a : Atom.t) -> String.equal a.pred pred)
  |> List.map (fun (a : Atom.t) ->
         String.concat (String.make 1 sep)
           (List.map Term.to_string a.args))
  |> List.sort compare
  |> fun lines -> String.concat "\n" lines ^ if lines = [] then "" else "\n"

let relations interp =
  Interp.true_atoms interp
  |> List.map (fun (a : Atom.t) -> (a.Atom.pred, Atom.arity a))
  |> List.sort_uniq compare
