(** Bulk base-relation (EDB) loading and dumping.

    Knowledge bases in the paper's setting sit on top of database
    relations ("[parent] is defined through a database relation", Example
    6).  This module turns delimited text into fact rules and
    interpretations back into delimited text.

    Format: one tuple per line, fields separated by [sep] (default tab).
    A field parses as an integer when it looks like one, otherwise as a
    symbolic constant; fields are trimmed.  Empty lines and lines starting
    with [#] are skipped. *)

val parse_cell : string -> Logic.Term.t
(** ["42"] is [Int 42], ["-7"] is [Int (-7)], anything else is [Sym]. *)

val facts_of_string :
  ?sep:char -> rel:string -> string -> (Logic.Rule.t list, string) result
(** Parse a whole document into facts for relation [rel].  All rows must
    have the same arity; the error message cites the offending line. *)

val facts_of_file :
  ?sep:char -> rel:string -> string -> (Logic.Rule.t list, string) result
(** Like {!facts_of_string}, reading the given path. *)

val dump_relation :
  ?sep:char -> pred:string -> Logic.Interp.t -> string
(** The true atoms of the given predicate, one tuple per line (arguments
    only, not the predicate name), sorted.  Negative and undefined atoms
    are not dumped (closed-world export). *)

val relations : Logic.Interp.t -> (string * int) list
(** Predicate name/arity pairs with at least one true atom. *)
