open Logic
module Budget = Governor.Budget
module Diag = Governor.Diag

type t = {
  rules : Rule.t list;
  universe : Term.t list;
  active_base : Atom.t list;
  full_base : Atom.t list Lazy.t;
}

let normalise_atom (a : Atom.t) : Atom.t =
  { a with args = List.map Builtin.eval_term a.args }

let normalise_literal (l : Literal.t) : Literal.t =
  { l with atom = normalise_atom l.atom }

let finalize_instance (r : Rule.t) : Rule.t option =
  if not (Rule.is_ground r) then
    invalid_arg "Grounder.finalize_instance: rule is not ground";
  if Builtin.is_builtin_literal (Rule.head r) then
    invalid_arg "Grounder.finalize_instance: builtin predicate in rule head";
  let exception Dead in
  try
    let body =
      List.filter_map
        (fun l ->
          if Builtin.is_builtin_literal l then
            match Builtin.eval_literal l with
            | Some true -> None
            | Some false | None -> raise Dead
          else Some (normalise_literal l))
        (Rule.body r)
    in
    let inst = Rule.make (normalise_literal (Rule.head r)) body in
    Some
      (match Rule.name r with
      | Some n -> Rule.with_name n inst
      | None -> inst)
  with Dead -> None

let ground_rule_instances ?(budget = Budget.unlimited) ~universe r =
  Herbrand.instantiations universe (Rule.vars r)
  |> Seq.filter_map (fun s ->
         Budget.tick budget;
         match finalize_instance (Rule.apply s r) with
         | Some inst ->
           Budget.tick_instance budget;
           Some inst
         | None -> None)
  |> List.of_seq

let collect_active rules =
  let acc = ref Atom.Set.empty in
  List.iter
    (fun r ->
      acc := Atom.Set.add (Rule.head r).Literal.atom !acc;
      List.iter (fun (l : Literal.t) -> acc := Atom.Set.add l.atom !acc) (Rule.body r))
    rules;
  Atom.Set.elements !acc

let setup ?(depth = 0) ?(extra_constants = []) rules =
  let sg = Herbrand.signature_of_rules rules in
  let sg =
    { sg with
      constants =
        Term.Set.elements
          (Term.Set.union
             (Term.Set.of_list sg.constants)
             (Term.Set.of_list extra_constants))
    }
  in
  let universe = Herbrand.universe ~depth sg in
  let full_base = lazy (Herbrand.base ~depth ~skip:Builtin.is_builtin sg) in
  (universe, full_base)

(* Count surviving instances per source rule against an optional cap so
   that, on overflow, the diagnostic names the rule being instantiated. *)
let overflow_guard ~universe ~max_instances =
  let count = ref 0 in
  fun (r : Rule.t) insts ->
    (match max_instances with
    | None -> ()
    | Some cap ->
      count := !count + List.length insts;
      if !count > cap then
        Diag.fail
          (Diag.Grounding_overflow
             { rule = Rule.to_string r;
               produced = !count;
               cap;
               universe = List.length universe
             }));
    insts

let naive ?(budget = Budget.unlimited) ?max_instances ?depth ?extra_constants
    rules =
  let universe, full_base = setup ?depth ?extra_constants rules in
  let guard = overflow_guard ~universe ~max_instances in
  let ground =
    List.concat_map
      (fun r -> guard r (ground_rule_instances ~budget ~universe r))
      rules
    |> Rule.Set.of_list |> Rule.Set.elements
  in
  { rules = ground; universe; active_base = collect_active ground; full_base }

(* ------------------------------------------------------------------ *)
(* Relevance-driven grounding                                          *)
(* ------------------------------------------------------------------ *)

(* Index of derivable literals by (predicate, polarity). *)
module Idx = struct
  type t = (string * bool, Literal.t list ref) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let add (idx : t) (l : Literal.t) =
    let key = (l.atom.pred, l.pol) in
    match Hashtbl.find_opt idx key with
    | Some cell -> cell := l :: !cell
    | None -> Hashtbl.add idx key (ref [ l ])

  let find (idx : t) (l : Literal.t) =
    match Hashtbl.find_opt idx (l.atom.pred, l.pol) with
    | Some cell -> !cell
    | None -> []
end

(* Match the ordinary body literals of [r] left-to-right against the
   indexed literal set, requiring (for semi-naive evaluation) that at least
   one of them matches a literal of [delta] when [delta] is non-empty.
   Remaining unbound variables are enumerated over [universe]. *)
let instances_against ~budget ~naf ~universe ~idx ~delta_idx ~use_delta
    (r : Rule.t) =
  let ordinary =
    List.filter
      (fun l ->
        (not (Builtin.is_builtin_literal l))
        && not (naf && Literal.is_negative l))
      (Rule.body r)
  in
  let out = ref [] in
  let rec go lits subst used_delta =
    Budget.tick budget;
    match lits with
    | [] ->
      if (not use_delta) || used_delta then begin
        let bound = Rule.apply subst r in
        let leftover = Rule.vars bound in
        Herbrand.instantiations universe leftover
        |> Seq.iter (fun s ->
               Budget.tick budget;
               match finalize_instance (Rule.apply s bound) with
               | Some inst ->
                 Budget.tick_instance budget;
                 out := inst :: !out
               | None -> ())
      end
    | (l : Literal.t) :: rest ->
      let l' = Subst.apply_literal subst l in
      let try_cands from_delta cands =
        List.iter
          (fun cand ->
            match Unify.match_literal ~init:subst l' cand with
            | Some subst' -> go rest subst' (used_delta || from_delta)
            | None -> ())
          cands
      in
      (* Candidates: to avoid duplicate work in semi-naive rounds we match
         against old facts and delta separately only through the flag. *)
      try_cands false (Idx.find idx l');
      try_cands true (Idx.find delta_idx l')
  in
  go ordinary Subst.empty false;
  !out

let instances_supported_by ?(budget = Budget.unlimited) ?(naf = false)
    ~universe ~support r =
  let idx = Idx.create () in
  List.iter (Idx.add idx) support;
  instances_against ~budget ~naf ~universe ~idx ~delta_idx:(Idx.create ())
    ~use_delta:false r

let relevant ?(budget = Budget.unlimited) ?(naf = false) ?depth
    ?extra_constants rules =
  let universe, full_base = setup ?depth ?extra_constants rules in
  let old_idx = Idx.create () in
  let seen = ref Literal.Set.empty in
  let produced = ref Rule.Set.empty in
  (* Round 0: all rules against the (empty old + initial delta) database.
     Facts and rules whose variables are all unbound fall back to universe
     enumeration, seeding the derivable set. *)
  let delta = ref [] in
  let delta_idx = ref (Idx.create ()) in
  let emit (inst : Rule.t) =
    if not (Rule.Set.mem inst !produced) then begin
      produced := Rule.Set.add inst !produced;
      let h = Rule.head inst in
      if not (Literal.Set.mem h !seen) then begin
        seen := Literal.Set.add h !seen;
        delta := h :: !delta
      end
    end
  in
  List.iter
    (fun r ->
      instances_against ~budget ~naf ~universe ~idx:old_idx
        ~delta_idx:(Idx.create ()) ~use_delta:false r
      |> List.iter emit)
    rules;
  let rec loop () =
    if !delta <> [] then begin
      Budget.check budget;
      let d = !delta in
      delta := [];
      delta_idx := Idx.create ();
      List.iter (Idx.add !delta_idx) d;
      List.iter
        (fun r ->
          instances_against ~budget ~naf ~universe ~idx:old_idx
            ~delta_idx:!delta_idx ~use_delta:true r
          |> List.iter emit)
        rules;
      List.iter (Idx.add old_idx) d;
      loop ()
    end
  in
  loop ();
  let ground = Rule.Set.elements !produced in
  { rules = ground; universe; active_base = collect_active ground; full_base }
