(** Grounding: from rules with variables to the set of ground instances
    (paper, Section 2: [ground(LP)]), with builtin comparison literals
    evaluated away.

    A ground instance whose builtin literals all evaluate to true keeps only
    its ordinary literals; an instance with a false or non-evaluable builtin
    is blocked in every interpretation and is discarded (sound for all the
    paper's notions: such a rule is never applicable, never non-blocked,
    hence never overrules or defeats).

    Two grounders are provided:

    - {!naive} — instantiate every rule over the full (depth-bounded)
      Herbrand universe.  This is the {e reference} semantics.
    - {!relevant} — bottom-up "intelligent" grounding: only produce
      instances whose ordinary body literals are supported by heads of
      already-produced instances (unbound variables fall back to universe
      enumeration).  Sound and complete for the classical bottom-up
      semantics (least fixpoints over applied rules, e.g. the [OV]/[EV]
      bridges of Section 3), but {b not} semantics-preserving for arbitrary
      ordered programs: a discarded rule with an underivable body is never
      applicable, yet — being non-blocked — it can still overrule or defeat
      other rules under Definition 2.  See the test suite for a witness. *)

type t = {
  rules : Logic.Rule.t list;  (** ground instances, builtin-free, deduplicated *)
  universe : Logic.Term.t list;  (** the Herbrand universe used *)
  active_base : Logic.Atom.t list;
      (** atoms occurring in [rules] (heads or bodies), sorted *)
  full_base : Logic.Atom.t list Lazy.t;
      (** the full Herbrand base over non-builtin predicates *)
}

val naive :
  ?budget:Governor.Budget.t ->
  ?max_instances:int ->
  ?depth:int ->
  ?extra_constants:Logic.Term.t list ->
  Logic.Rule.t list ->
  t
(** Reference grounder.  [depth] bounds function-symbol nesting in the
    universe (default [0]); [extra_constants] widens the universe (used to
    ground a component against the constants of a whole ordered program);
    [max_instances] guards against instantiation blow-up by raising
    [Governor.Diag.Error (Grounding_overflow _)] — naming the rule being
    instantiated — once more than that many surviving instances have been
    produced.  [budget] is ticked per candidate instantiation (and per
    surviving instance), so deadlines, step budgets and instance caps all
    bound the grounding work; exhaustion raises
    [Governor.Budget.Exhausted]. *)

val relevant :
  ?budget:Governor.Budget.t ->
  ?naf:bool ->
  ?depth:int ->
  ?extra_constants:Logic.Term.t list ->
  Logic.Rule.t list ->
  t
(** Relevance-driven grounder (see above for the soundness caveat).

    With [~naf:true] negative body literals are read as negation-as-failure:
    they are assumed satisfiable during grounding (their variables, if not
    bound elsewhere, are enumerated over the universe) instead of being
    matched against derived negative heads.  Use this mode to ground
    classical (seminegative) programs for the [Datalog] engines. *)

val ground_rule_instances :
  ?budget:Governor.Budget.t ->
  universe:Logic.Term.t list ->
  Logic.Rule.t ->
  Logic.Rule.t list
(** All surviving ground instances of one rule over a given universe
    (builtins evaluated, arithmetic normalised). *)

val instances_supported_by :
  ?budget:Governor.Budget.t ->
  ?naf:bool ->
  universe:Logic.Term.t list ->
  support:Logic.Literal.t list ->
  Logic.Rule.t ->
  Logic.Rule.t list
(** Ground instances of one rule whose ordinary body literals each match a
    literal of [support] (with [~naf:true], negative literals are exempt);
    variables left unbound are enumerated over [universe]. *)

val finalize_instance : Logic.Rule.t -> Logic.Rule.t option
(** Evaluate builtins and normalise arithmetic in one ground rule; [None]
    if a builtin is false or not evaluable.  Raises [Invalid_argument] if
    the rule is not ground or has a builtin head. *)
