open Logic

type report = { rule : Rule.t; unbound : string list }

let unbound_vars (r : Rule.t) =
  let ordinary, builtin =
    List.partition (fun l -> not (Builtin.is_builtin_literal l)) (Rule.body r)
  in
  let bound =
    List.fold_left (fun acc l -> Literal.add_vars l acc) [] ordinary
  in
  let need =
    List.fold_left
      (fun acc l -> Literal.add_vars l acc)
      (Literal.vars (Rule.head r))
      builtin
  in
  List.filter (fun v -> not (List.mem v bound)) need

let is_safe r = unbound_vars r = []

let check rules =
  List.filter_map
    (fun rule ->
      match unbound_vars rule with
      | [] -> None
      | unbound -> Some { rule; unbound })
    rules

let pp_report ppf { rule; unbound } =
  Format.fprintf ppf "unsafe rule %a: variable(s) %s bound by no body literal"
    Rule.pp rule
    (String.concat ", " unbound)
