open Logic

let comparison_preds = [ "<"; ">"; "<="; ">="; "="; "!=" ]
let is_builtin (p, arity) = arity = 2 && List.mem p comparison_preds
let is_builtin_atom (a : Atom.t) = is_builtin (a.pred, Atom.arity a)
let is_builtin_literal (l : Literal.t) = is_builtin_atom l.atom
let arith_fns = [ ("+", 2); ("-", 2); ("*", 2); ("/", 2); ("mod", 2); ("-", 1) ]
let is_arith_fn fa = List.mem fa arith_fns

let div_by_zero op t =
  Governor.Diag.fail
    (Governor.Diag.Eval_error
       { op;
         detail =
           Printf.sprintf "%s by zero evaluating %s"
             (if op = "/" then "division" else "modulo")
             (Term.to_string t)
       })

let rec eval_term t =
  match t with
  | Term.Var _ -> invalid_arg "Builtin.eval_term: non-ground term"
  | Term.Int _ | Term.Sym _ -> t
  | Term.App (f, args) -> (
    let args = List.map eval_term args in
    match f, args with
    | "+", [ Term.Int a; Term.Int b ] -> Term.Int (a + b)
    | "-", [ Term.Int a; Term.Int b ] -> Term.Int (a - b)
    | "*", [ Term.Int a; Term.Int b ] -> Term.Int (a * b)
    | "/", [ Term.Int _; Term.Int 0 ] -> div_by_zero "/" t
    | "mod", [ Term.Int _; Term.Int 0 ] -> div_by_zero "mod" t
    | "/", [ Term.Int a; Term.Int b ] -> Term.Int (a / b)
    | "mod", [ Term.Int a; Term.Int b ] -> Term.Int (a mod b)
    | "-", [ Term.Int a ] -> Term.Int (-a)
    | _ -> Term.App (f, args))

let eval_atom (a : Atom.t) =
  if not (is_builtin_atom a) then
    invalid_arg "Builtin.eval_atom: not a builtin atom";
  match List.map eval_term a.args with
  | [ l; r ] -> (
    match a.pred, l, r with
    | "=", l, r -> Some (Term.equal l r)
    | "!=", l, r -> Some (not (Term.equal l r))
    | "<", Term.Int x, Term.Int y -> Some (x < y)
    | ">", Term.Int x, Term.Int y -> Some (x > y)
    | "<=", Term.Int x, Term.Int y -> Some (x <= y)
    | ">=", Term.Int x, Term.Int y -> Some (x >= y)
    | _ -> None)
  | _ -> assert false

let eval_literal (l : Literal.t) =
  Option.map (fun b -> if l.pol then b else not b) (eval_atom l.atom)
