(** Rule safety (range restriction).

    A rule is {e safe} when every variable occurring in its head or in a
    builtin body literal also occurs in an ordinary (non-builtin) body
    literal.  Safe rules have finitely many relevant ground instances over a
    finite Herbrand universe and can be grounded by joins.

    Unsafe rules are still meaningful — the paper's [OV(C)] construction
    writes the closed-world component as non-ground facts
    [-p(X1, ..., Xn)], whose instances range over the whole Herbrand base —
    but they force universe-wide enumeration of their free variables. *)

type report = {
  rule : Logic.Rule.t;
  unbound : string list;  (** head/builtin variables bound by no ordinary body literal *)
}

val unbound_vars : Logic.Rule.t -> string list
(** Variables of the head and of builtin body literals that appear in no
    ordinary body literal (empty iff the rule is safe). *)

val is_safe : Logic.Rule.t -> bool

val check : Logic.Rule.t list -> report list
(** Reports for every unsafe rule of the program (empty iff all safe). *)

val pp_report : Format.formatter -> report -> unit
