(** Builtin (evaluable) predicates and arithmetic.

    Comparisons — [<], [>], [<=], [>=], [=], [!=] — are the builtin
    predicates used by the paper's loan program (Figure 3: [X > 11],
    [X > Y + 2]).  Arithmetic function symbols [+], [-], [*], [/], [mod]
    (and unary [-]) are evaluated over integers at grounding time.

    A builtin literal has a fixed interpretation, so a ground instance
    whose builtin evaluates to false is {e blocked} in every interpretation
    and can be discarded; one whose builtin is true can drop the literal.
    Comparisons on non-numeric ground terms other than [=]/[!=] (which use
    structural equality) do not evaluate and make the instance
    unsatisfiable. *)

val is_builtin : string * int -> bool
(** [is_builtin (pred, arity)] — recognise comparison predicates (arity 2). *)

val is_builtin_atom : Logic.Atom.t -> bool
val is_builtin_literal : Logic.Literal.t -> bool

val is_arith_fn : string * int -> bool
(** Recognise arithmetic function symbols. *)

val eval_term : Logic.Term.t -> Logic.Term.t
(** Normalise a ground term by evaluating arithmetic sub-terms; arithmetic
    applied to non-integers is left symbolic.  Raises [Invalid_argument] on
    non-ground input and [Governor.Diag.Error (Eval_error _)] on division
    or modulo by zero. *)

val eval_atom : Logic.Atom.t -> bool option
(** Evaluate a ground builtin atom; [None] if it cannot be evaluated (e.g.
    [penguin < 3]).  Raises [Invalid_argument] if the atom is not builtin or
    not ground. *)

val eval_literal : Logic.Literal.t -> bool option
(** Like {!eval_atom}; a negative literal yields the complement. *)
