(** The affected cone of a delta over a ground ordered program: every
    atom whose least-fixpoint value could differ from the pre-mutation
    fixpoint, closed over body-dependency {e and} suppression edges.

    Atoms outside the cone provably keep their old value: all their head
    rules, those rules' bodies, their suppressor sets and the suppressors'
    blocked statuses are untouched by the delta, so the sub-fixpoint
    restricted to the complement coincides in the old and new program
    (docs/INCREMENTAL.md spells out the induction). *)

type t = { atoms : bool array; rules : bool array; marked : int }

val affected : Ordered.Gop.t -> Delta.t -> t
(** Computed on the {e repaired} grounding ([Reground]'s output). *)

val mem_atom : t -> int -> bool

val n_marked : t -> int
(** Number of affected atoms — the amount of fixpoint work repair redoes. *)
