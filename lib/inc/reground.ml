open Logic
module Gop = Ordered.Gop
module Program = Ordered.Program
module Budget = Governor.Budget

type group = {
  comp : Program.component_id;
  src : Rule.t;
  insts : Rule.t list;
}

type state = {
  gop : Gop.t;
  groups : group list;
  universe : Term.t list;
}

type fallback = [ `Universe_changed | `Shared_instance | `View_mismatch ]

let pp_fallback ppf = function
  | `Universe_changed -> Format.pp_print_string ppf "universe changed"
  | `Shared_instance -> Format.pp_print_string ppf "shared ground instance"
  | `View_mismatch -> Format.pp_print_string ppf "view shape mismatch"

let tagged_of_groups groups =
  Gop.flatten_groups (List.map (fun g -> (g.comp, g.src, g.insts)) groups)

let ground ?budget program comp =
  let groups =
    List.map
      (fun (c, src, insts) -> { comp = c; src; insts })
      (Gop.ground_groups ?budget program comp)
  in
  { gop = Gop.of_view program comp (tagged_of_groups groups);
    groups;
    universe = Gop.schema_universe program comp
  }

(* The two one-sided greedy alignments of the cached groups against the
   mutated view.  A store mutation either appends one rule to one object
   or removes every occurrence of one rule from one object, so the new
   view is the old one with pure insertions or pure deletions; anything
   else is a shape mismatch and falls back to scratch grounding. *)

let heads_match g (c, r) = g.comp = c && Rule.compare g.src r = 0

(* new view ⊆ old groups: unmatched groups are deletions *)
let rec del_diff acc groups view =
  match (groups, view) with
  | [], [] -> Some (List.rev acc)
  | g :: gs, v :: vs when heads_match g v -> del_diff (`Keep g :: acc) gs vs
  | g :: gs, vs -> del_diff (`Drop g :: acc) gs vs
  | [], _ :: _ -> None

(* old groups ⊆ new view: unmatched view rules are insertions *)
let rec ins_diff acc groups view =
  match (groups, view) with
  | [], [] -> Some (List.rev acc)
  | g :: gs, v :: vs when heads_match g v -> ins_diff (`Keep g :: acc) gs vs
  | gs, (c, r) :: vs -> ins_diff (`Add (c, r) :: acc) gs vs
  | _ :: _, [] -> None

module StrSet = Set.Make (String)

let inst_strings insts =
  StrSet.of_list (List.map Rule.to_string insts)

(* Could [cand] (a surviving view rule of the same component) produce any
   of the instances we are about to drop?  If so, a scratch grounding
   would re-attribute the instance to [cand] instead of dropping it —
   the repaired grounding would diverge, so the caller must fall back.
   Instance strings carry the source rule's name, so only same-named
   rules can ever collide; the head predicate prefilter skips the
   re-instantiation in the common case.  The check itself is exact:
   re-instantiate the candidate and intersect the printed instances. *)
let could_produce ~budget ~universe ~dropped_heads ~dropped_strs cand =
  let h = (Rule.head cand.src).Literal.atom in
  List.mem (h.Atom.pred, List.length h.Atom.args) dropped_heads
  && List.exists
       (fun i -> StrSet.mem (Rule.to_string i) dropped_strs)
       (Ground.Grounder.ground_rule_instances ~budget ~universe cand.src)

let apply_deletion ~budget ~universe ~program ~comp state steps =
  let keeps = List.filter_map (function `Keep g -> Some g | _ -> None) steps in
  let drops = List.filter_map (function `Drop g -> Some g | _ -> None) steps in
  let dropped = List.concat_map (fun g -> g.insts) drops in
  if dropped = [] then Ok ({ state with groups = keeps }, Delta.empty)
  else
    let dropped_strs = inst_strings dropped in
    let dropped_heads =
      List.map
        (fun r ->
          let h = (Rule.head r).Literal.atom in
          (h.Atom.pred, List.length h.Atom.args))
        dropped
    in
    let dropped_name g' = List.exists (fun g -> Rule.name g.src = Rule.name g'.src) drops in
    let dropped_comps = List.map (fun g -> g.comp) drops in
    let shared =
      List.exists
        (fun g ->
          List.mem g.comp dropped_comps && dropped_name g
          && could_produce ~budget ~universe ~dropped_heads ~dropped_strs g)
        keeps
    in
    if shared then Error `Shared_instance
    else
      let gop = Gop.of_view program comp (tagged_of_groups keeps) in
      Ok
        ( { state with gop; groups = keeps },
          { Delta.added = []; added_rules = []; removed_rules = dropped } )

let apply_insertion ~budget ~universe ~program ~comp state steps =
  (* Rebuild the group list in view order with the shared dedup discipline
     of [Gop.ground_groups]: existing groups feed the table as-is (they
     were deduplicated under the same prefix), fresh instances of an added
     rule are kept only if unseen. *)
  let seen = Hashtbl.create 64 in
  let tagged =
    List.map
      (function
        | `Keep g ->
          List.iter (fun i -> Hashtbl.replace seen (g.comp, Rule.to_string i) ()) g.insts;
          (g, false)
        | `Add (c, r) ->
          let raw = Ground.Grounder.ground_rule_instances ~budget ~universe r in
          let insts =
            List.filter
              (fun i ->
                let k = (c, Rule.to_string i) in
                if Hashtbl.mem seen k then false
                else begin
                  Hashtbl.add seen k ();
                  true
                end)
              raw
          in
          ({ comp = c; src = r; insts }, true))
      steps
  in
  (* A fresh instance equal to a later group's instance would, from
     scratch, be attributed to the earlier (added) rule and dropped from
     the later group — our later groups still hold theirs, so the
     groundings would diverge.  Never reachable through the store (rules
     append at the end of their component block) but checked anyway. *)
  let stolen =
    let arr = Array.of_list tagged in
    let after = Hashtbl.create 64 in
    let hit = ref false in
    for i = Array.length arr - 1 downto 0 do
      let g, is_add = arr.(i) in
      if
        is_add
        && List.exists (fun x -> Hashtbl.mem after (g.comp, Rule.to_string x)) g.insts
      then hit := true;
      List.iter (fun x -> Hashtbl.replace after (g.comp, Rule.to_string x) ()) g.insts
    done;
    !hit
  in
  if stolen then Error `Shared_instance
  else
    let added_rules =
      List.concat_map (fun (g, is_add) -> if is_add then g.insts else []) tagged
    in
    let groups = List.map fst tagged in
    if added_rules = [] then Ok ({ state with groups }, Delta.empty)
    else
      let gop = Gop.of_view program comp (tagged_of_groups groups) in
      (* indices of the added instances in the flattened rule array *)
      let added = ref [] in
      let off = ref 0 in
      List.iter
        (fun (g, is_add) ->
          if is_add then
            List.iteri (fun k _ -> added := (!off + k) :: !added) g.insts;
          off := !off + List.length g.insts)
        tagged;
      Ok
        ( { state with gop; groups },
          { Delta.added = List.rev !added;
            added_rules;
            removed_rules = []
          } )

let reground ?(budget = Budget.unlimited) state ~program =
  let comp = state.gop.Gop.comp in
  let view = Program.view program comp in
  let universe = Gop.schema_universe program comp in
  if not (List.equal Term.equal universe state.universe) then
    Error `Universe_changed
  else
    match del_diff [] state.groups view with
    | Some steps -> apply_deletion ~budget ~universe ~program ~comp state steps
    | None -> (
      match ins_diff [] state.groups view with
      | Some steps ->
        apply_insertion ~budget ~universe ~program ~comp state steps
      | None -> Error `View_mismatch)
