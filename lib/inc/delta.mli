(** The typed delta of one KB mutation at the ground level: which ground
    rules a repaired grounding gained or lost relative to the previous
    grounding of the same viewpoint.

    A delta is always expressed against the {e repaired} grounding (the
    one {!Reground} returns): [added] indexes rules in that grounding,
    while removed instances no longer have an index and are carried
    symbolically.  {!Cone} turns a delta into the affected-atom cone that
    seeds fixpoint repair ({!Repair}). *)

type t = {
  added : int list;  (** indices of the added ground rules in the new gop *)
  added_rules : Logic.Rule.t list;  (** the same rules, symbolically *)
  removed_rules : Logic.Rule.t list;
      (** ground instances dropped by the mutation *)
}

val empty : t

val is_empty : t -> bool
(** No ground-level change: the mutation's instances all deduplicated
    away (or an added rule had no instances), so every derived result
    for this viewpoint is still exact. *)

val touched_atoms : t -> Logic.Atom.t list
(** Head atoms of the added and removed ground rules — the seed [S0] of
    the affected cone. *)

val pp : Format.formatter -> t -> unit
