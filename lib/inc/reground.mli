(** Incremental re-grounding: repair the grounding of one viewpoint after
    a single-rule mutation instead of re-instantiating the whole view.

    A {!state} keeps, next to the interned {!Ordered.Gop.t}, the
    provenance {!Gop.ground_groups} produced it from — one group of
    surviving ground instances per view rule — plus the schema universe
    the instances were enumerated over.  {!reground} aligns the cached
    groups against the mutated program's view, instantiates only the
    added rule (or drops only the removed rule's groups) and re-interns;
    by the shared-dedup discipline the result is {e bit-identical} to
    grounding the new view from scratch, which preserves every
    enumeration-order contract downstream.

    Repair refuses — [Error], the caller recomputes — whenever identity
    with scratch grounding cannot be guaranteed cheaply:

    - [`Universe_changed]: the mutation changed the view's Herbrand
      universe (a new or vanished constant), so {e other} rules'
      instances change too.  This is why adding a fact about a fresh
      constant never repairs.
    - [`Shared_instance]: a dropped ground instance is also producible
      by a surviving same-component rule of the same name (or an added
      instance collides with a later group) — scratch grounding would
      attribute it differently.
    - [`View_mismatch]: the new view is not the old view with pure
      insertions or pure deletions (e.g. the component set changed). *)

type group = {
  comp : Ordered.Program.component_id;
  src : Logic.Rule.t;  (** the schema (view) rule *)
  insts : Logic.Rule.t list;  (** its surviving deduplicated instances *)
}

type state = {
  gop : Ordered.Gop.t;
  groups : group list;  (** provenance, in view order, one per view rule *)
  universe : Logic.Term.t list;  (** schema universe the instances used *)
}

type fallback = [ `Universe_changed | `Shared_instance | `View_mismatch ]

val pp_fallback : Format.formatter -> fallback -> unit

val ground :
  ?budget:Governor.Budget.t ->
  Ordered.Program.t ->
  Ordered.Program.component_id ->
  state
(** Scratch grounding with provenance; [state.gop] equals
    [Ordered.Gop.ground program comp]. *)

val reground :
  ?budget:Governor.Budget.t ->
  state ->
  program:Ordered.Program.t ->
  (state * Delta.t, fallback) result
(** Repair against the mutated [program] (same component numbering —
    single-rule mutations never renumber).  [Ok (state', delta)] with an
    empty delta means the mutation did not change this viewpoint's
    grounding at all (the instances deduplicated away or the rule had
    none); every cached result for the viewpoint is then still exact. *)
