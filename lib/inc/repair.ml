module Gop = Ordered.Gop
module Vfix = Ordered.Vfix

type outcome =
  | Unchanged
  | Repaired of Logic.Interp.t
  | Recomputed of Logic.Interp.t

let least_model ?budget ~previous (g : Gop.t) (d : Delta.t) =
  if Delta.is_empty d then Unchanged
  else begin
    let seed, _gone = Gop.Values.of_interp g previous in
    let cone = Cone.affected g d in
    Array.iteri (fun a m -> if m then Gop.Values.unset seed a) cone.Cone.atoms;
    match Vfix.repair ?budget g ~seed with
    | `Repaired v -> Repaired (Gop.Values.to_interp g v)
    | `Recomputed v -> Recomputed (Gop.Values.to_interp g v)
  end
