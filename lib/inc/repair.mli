(** Least-fixpoint repair: re-derive only the affected cone.

    Seeds {!Ordered.Vfix.repair} with the previous least model minus the
    delta's affected cone.  By {!Cone}'s guarantee the seed is below the
    new fixpoint, so propagation lands exactly on it ([Repaired]); a
    propagation conflict means the cone analysis was beaten by
    non-monotone damage and the fixpoint is recomputed from scratch
    ([Recomputed]) — counted by the caller, never silent. *)

type outcome =
  | Unchanged  (** empty delta: the previous model is still exact *)
  | Repaired of Logic.Interp.t
  | Recomputed of Logic.Interp.t  (** fell back to a full fixpoint *)

val least_model :
  ?budget:Governor.Budget.t ->
  previous:Logic.Interp.t ->
  Ordered.Gop.t ->
  Delta.t ->
  outcome
(** [least_model ~previous g d]: [g] is the repaired grounding and [d]
    the delta {!Reground.reground} emitted for it; [previous] is the
    least model cached against the pre-mutation grounding. *)
