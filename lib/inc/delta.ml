open Logic

type t = {
  added : int list;
  added_rules : Rule.t list;
  removed_rules : Rule.t list;
}

let empty = { added = []; added_rules = []; removed_rules = [] }
let is_empty d = d.added = [] && d.removed_rules = []

let touched_atoms d =
  List.map (fun r -> (Rule.head r).Literal.atom) (d.added_rules @ d.removed_rules)

let pp ppf d =
  Format.fprintf ppf "@[<v>+%d ground rule(s), -%d ground rule(s)@]"
    (List.length d.added_rules)
    (List.length d.removed_rules)
