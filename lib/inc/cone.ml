module Gop = Ordered.Gop

type t = { atoms : bool array; rules : bool array; marked : int }

(* Closure invariants (see docs/INCREMENTAL.md for the soundness proof):
   - a marked rule marks its head atom (its derivations may change);
   - a marked atom marks every rule reading it in the body, and — because
     a body change can flip a suppressor's blocked status — every rule
     those rules suppress;
   - a seed atom (head of an added or removed ground rule) additionally
     marks every rule sharing that head atom: their suppressor sets
     changed structurally.
   Contrapositive: an unmarked atom has only unmarked head rules, whose
   bodies and suppressors evaluate identically in the old and new
   program, so its old fixpoint value is still exact. *)
let affected (g : Gop.t) (d : Delta.t) =
  let na = Gop.n_atoms g and nr = Gop.n_rules g in
  let atoms = Array.make (max 1 na) false in
  let rules = Array.make (max 1 nr) false in
  let marked = ref 0 in
  let rec mark_rule i =
    if not rules.(i) then begin
      rules.(i) <- true;
      mark_atom g.Gop.rules.(i).Gop.head
    end
  and mark_atom a =
    if not atoms.(a) then begin
      atoms.(a) <- true;
      incr marked;
      let touch j =
        mark_rule j;
        List.iter mark_rule g.Gop.suppresses.(j)
      in
      List.iter touch g.Gop.by_body_pos.(a);
      List.iter touch g.Gop.by_body_neg.(a)
    end
  in
  List.iter
    (fun i ->
      mark_rule i;
      List.iter mark_rule g.Gop.suppresses.(i))
    d.Delta.added;
  List.iter
    (fun a ->
      match Gop.atom_id g a with
      | None -> ()
      | Some ai ->
        mark_atom ai;
        List.iter
          (fun j ->
            mark_rule j;
            List.iter mark_rule g.Gop.suppresses.(j))
          g.Gop.by_head.(ai))
    (Delta.touched_atoms d);
  { atoms; rules; marked = !marked }

let mem_atom t a = t.atoms.(a)
let n_marked t = t.marked
