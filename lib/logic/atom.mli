(** Atoms (the paper's "predicates"): a predicate symbol applied to a
    sequence of terms, e.g. [bird(penguin)] or [anc(X, Y)].

    Comparison builtins ([<], [>], [<=], [>=], [=], [!=]) are represented as
    ordinary atoms with the operator as predicate symbol; the [Ground]
    library recognises and evaluates them. *)

type t = { pred : string; args : Term.t list }

val make : string -> Term.t list -> t

val prop : string -> t
(** [prop p] is the 0-ary atom [p]. *)

val arity : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_ground : t -> bool
val vars : t -> string list
val add_vars : t -> string list -> string list

val rename : (string -> string) -> t -> t
(** Apply a renaming to every variable of the atom. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
