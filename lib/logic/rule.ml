type t = { name : string option; head : Literal.t; body : Literal.t list }

let make head body = { name = None; head; body }
let fact head = { name = None; head; body = [] }
let with_name n r = { r with name = Some n }
let name r = r.name
let head r = r.head
let body r = r.body
let body_set r = Literal.Set.of_list r.body
let is_fact r = r.body = []
let is_seminegative r = Literal.is_positive r.head

let is_positive r =
  Literal.is_positive r.head && List.for_all Literal.is_positive r.body

let is_ground r = Literal.is_ground r.head && List.for_all Literal.is_ground r.body

let vars r =
  List.fold_left
    (fun acc l -> Literal.add_vars l acc)
    (Literal.vars r.head) r.body

let rename f r =
  { r with
    head = Literal.rename f r.head;
    body = List.map (Literal.rename f) r.body
  }

let apply s r =
  { r with
    head = Subst.apply_literal s r.head;
    body = List.map (Subst.apply_literal s) r.body
  }

let compare r1 r2 =
  let c = Option.compare String.compare r1.name r2.name in
  if c <> 0 then c
  else
    let c = Literal.compare r1.head r2.head in
    if c <> 0 then c else List.compare Literal.compare r1.body r2.body

let equal r1 r2 = compare r1 r2 = 0

let predicates r =
  let add acc (l : Literal.t) =
    let key = (l.atom.pred, Atom.arity l.atom) in
    if List.mem key acc then acc else key :: acc
  in
  List.rev (List.fold_left add (add [] r.head) r.body)

let pp ppf r =
  (match r.name with
  | Some n -> Format.fprintf ppf "%s : " n
  | None -> ());
  match r.body with
  | [] -> Format.fprintf ppf "%a." Literal.pp r.head
  | body ->
    Format.fprintf ppf "%a :- %a." Literal.pp r.head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Literal.pp)
      body

let to_string r = Format.asprintf "%a" pp r

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
