type t =
  | Var of string
  | Int of int
  | Sym of string
  | App of string * t list

let rec compare t1 t2 =
  match t1, t2 with
  | Var a, Var b -> String.compare a b
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Int a, Int b -> Int.compare a b
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Sym a, Sym b -> String.compare a b
  | Sym _, _ -> -1
  | _, Sym _ -> 1
  | App (f, args1), App (g, args2) ->
    let c = String.compare f g in
    if c <> 0 then c else compare_lists args1 args2

and compare_lists l1 l2 =
  match l1, l2 with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs ys

let equal t1 t2 = compare t1 t2 = 0

let hash = Hashtbl.hash

let rec is_ground = function
  | Var _ -> false
  | Int _ | Sym _ -> true
  | App (_, args) -> List.for_all is_ground args

let rec add_vars t acc =
  match t with
  | Var v -> if List.mem v acc then acc else acc @ [ v ]
  | Int _ | Sym _ -> acc
  | App (_, args) -> List.fold_left (fun acc t -> add_vars t acc) acc args

let vars t = add_vars t []

let rec size = function
  | Var _ | Int _ | Sym _ -> 1
  | App (_, args) -> List.fold_left (fun n t -> n + size t) 1 args

let rec depth = function
  | Var _ | Int _ | Sym _ -> 0
  | App (_, args) -> 1 + List.fold_left (fun d t -> max d (depth t)) 0 args

let rec rename f = function
  | Var v -> Var (f v)
  | (Int _ | Sym _) as t -> t
  | App (g, args) -> App (g, List.map (rename f) args)

(* Arithmetic prints infix, with parentheses when a lower-precedence
   operator appears under a higher-precedence context, so that printed
   terms re-parse to themselves. *)
let level_of = function
  | "+" | "-" -> 1
  | "*" | "/" | "mod" -> 2
  | _ -> 3

let rec pp_prec level ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Int n ->
    if n < 0 && level > 0 then Format.fprintf ppf "(%d)" n
    else Format.pp_print_int ppf n
  | Sym s -> Format.pp_print_string ppf s
  | App (("+" | "-" | "*" | "/" | "mod") as op, [ l; r ]) ->
    let my = level_of op in
    if my < level then
      Format.fprintf ppf "(%a %s %a)" (pp_prec my) l op (pp_prec (my + 1)) r
    else Format.fprintf ppf "%a %s %a" (pp_prec my) l op (pp_prec (my + 1)) r
  | App ("-", [ t ]) -> Format.fprintf ppf "-%a" (pp_prec 3) t
  | App (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (pp_prec 0))
      args

let pp ppf t = pp_prec 0 ppf t

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
