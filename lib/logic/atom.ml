type t = { pred : string; args : Term.t list }

let make pred args = { pred; args }
let prop pred = { pred; args = [] }
let arity a = List.length a.args

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else Term.compare_lists a.args b.args

let equal a b = compare a b = 0
let hash = Hashtbl.hash
let is_ground a = List.for_all Term.is_ground a.args

let add_vars a acc =
  List.fold_left (fun acc t -> Term.add_vars t acc) acc a.args

let vars a = add_vars a []
let rename f a = { a with args = List.map (Term.rename f) a.args }

(* Comparison builtins print infix so that [X > 11] round-trips through the
   parser. *)
let infix_preds = [ "<"; ">"; "<="; ">="; "="; "!=" ]

let pp ppf a =
  match a.pred, a.args with
  | _, [] -> Format.pp_print_string ppf a.pred
  | p, [ l; r ] when List.mem p infix_preds ->
    Format.fprintf ppf "%a %s %a" Term.pp l p Term.pp r
  | p, args ->
    Format.fprintf ppf "%s(%a)" p
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Term.pp)
      args

let to_string a = Format.asprintf "%a" pp a

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
