(** Literals: an atom or its (classical) negation.

    Following the paper, negation may appear both in rule bodies and in rule
    heads; [neg l] is the complementary literal [-A] of [A] (written [-X]
    for sets, see Section 2). *)

type t = { pol : bool; atom : Atom.t }
(** [pol = true] is a positive literal [A]; [pol = false] is the negative
    literal [-A]. *)

val pos : Atom.t -> t
val neg_atom : Atom.t -> t

val make : bool -> Atom.t -> t

val neg : t -> t
(** Complement: [neg A = -A] and [neg (-A) = A]. *)

val is_positive : t -> bool
val is_negative : t -> bool

val complementary : t -> t -> bool
(** [complementary a b] is [true] iff [a = neg b]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_ground : t -> bool
val vars : t -> string list
val add_vars : t -> string list -> string list
val rename : (string -> string) -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : sig
  include Set.S with type elt = t

  val consistent : t -> bool
  (** [consistent s] is [true] iff [s] contains no pair of complementary
      literals (the paper's consistency of interpretations). *)

  val positives : t -> t
  (** The sub-set of positive literals ([X+] in the paper). *)

  val negatives : t -> t
  (** The sub-set of negative literals ([X-] in the paper). *)
end

module Map : Map.S with type key = t
