module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty
let singleton x t = M.singleton x t

let bind x t s =
  match M.find_opt x s with
  | None -> M.add x t s
  | Some t' ->
    if Term.equal t t' then s
    else invalid_arg (Printf.sprintf "Subst.bind: %s already bound" x)

let find x s = M.find_opt x s
let of_list l = List.fold_left (fun s (x, t) -> bind x t s) empty l
let bindings s = M.bindings s

(* [busy] guards against self-referential bindings (e.g. X -> f(X), which
   one-way matching can produce when pattern and subject share variable
   names): a variable already being expanded is left as itself. *)
let rec apply busy s = function
  | Term.Var x as t -> (
    if List.mem x busy then t
    else
      match M.find_opt x s with
      | None -> t
      | Some t' -> if Term.equal t t' then t' else apply (x :: busy) s t')
  | (Term.Int _ | Term.Sym _) as t -> t
  | Term.App (f, args) -> Term.App (f, List.map (apply busy s) args)

let apply_term s t = apply [] s t

let apply_atom s (a : Atom.t) : Atom.t =
  { a with args = List.map (apply_term s) a.args }

let apply_literal s (l : Literal.t) : Literal.t =
  { l with atom = apply_atom s l.atom }

let compose s1 s2 =
  let s1' = M.map (apply_term s2) s1 in
  M.union (fun _ t _ -> Some t) s1' s2

let equal = M.equal Term.equal

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (x, t) -> Format.fprintf ppf "%s -> %a" x Term.pp t))
    (bindings s)
