(** First-order terms.

    A term is a variable, an integer constant, a symbolic constant, or a
    function application [f(t1, ..., tn)] with [n >= 1] (paper, Section 2:
    "a term is recursively defined as a variable, a constant or
    [f(t1, ..., tn)]").  Integers are a distinguished constant sort so that
    the arithmetic builtins of the loan program (Figure 3) can be
    evaluated. *)

type t =
  | Var of string  (** logical variable, e.g. [X] *)
  | Int of int  (** integer constant, e.g. [12] *)
  | Sym of string  (** symbolic constant, e.g. [penguin] *)
  | App of string * t list
      (** function application [f(t1, ..., tn)], [n >= 1] *)

val compare : t -> t -> int
(** Total structural order, suitable for [Map]/[Set]. *)

val compare_lists : t list -> t list -> int
(** Lexicographic extension of {!compare} to argument lists. *)

val equal : t -> t -> bool

val hash : t -> int

val is_ground : t -> bool
(** [is_ground t] is [true] iff [t] contains no variable. *)

val vars : t -> string list
(** Variables occurring in [t], each listed once, in first-occurrence
    order. *)

val add_vars : t -> string list -> string list
(** [add_vars t acc] prepends to [acc] the variables of [t] not already in
    [acc] (first-occurrence order overall when folded left-to-right). *)

val size : t -> int
(** Number of constructors in the term (a variable or constant has size
    1). *)

val depth : t -> int
(** Nesting depth: constants and variables have depth 0, [f(t, ...)] has
    depth [1 + max (depth ti)]. *)

val rename : (string -> string) -> t -> t
(** [rename f t] applies [f] to every variable name in [t]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print in the surface syntax, e.g. [f(X, 3, a)]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
