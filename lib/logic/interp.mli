(** Three-valued interpretations.

    An interpretation for a program [P] is a consistent subset of
    [B_P U -B_P] (paper, Section 2).  We represent it as a partial map from
    ground atoms to booleans, so consistency (never both [A] and [-A]) holds
    by construction; an atom absent from the map is {e undefined} (the
    paper's [I-bar]). *)

type value = True | False | Undefined

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
(** Number of defined atoms (= number of literals in the set view). *)

val value : t -> Atom.t -> value
(** Truth value of a ground atom. *)

val value_lit : t -> Literal.t -> value
(** Truth value of a literal: [value_lit i (-A)] is the De Morgan dual of
    [value i A]. *)

val holds : t -> Literal.t -> bool
(** [holds i l] iff [value_lit i l = True] — i.e. the literal is a member of
    the interpretation seen as a set of literals. *)

val set : t -> Atom.t -> bool -> t
(** [set i a b] defines [a] as [b].  Raises [Invalid_argument] if [a] is
    already defined with the opposite value (the result would be
    inconsistent). *)

val add_lit : t -> Literal.t -> t
(** [add_lit i l] adds literal [l]; see {!set}. *)

val add_lit_opt : t -> Literal.t -> t option
(** Like {!add_lit} but returns [None] instead of raising on
    inconsistency. *)

val unset : t -> Atom.t -> t
(** Make an atom undefined again. *)

val of_literals : Literal.t list -> t
(** Build from a literal list; raises [Invalid_argument] if inconsistent. *)

val of_literals_opt : Literal.t list -> t option

val to_literals : t -> Literal.t list
(** The literal-set view, sorted. *)

val to_set : t -> Literal.Set.t

val defined_atoms : t -> Atom.t list
val true_atoms : t -> Atom.t list
val false_atoms : t -> Atom.t list

val undefined_atoms : t -> base:Atom.t list -> Atom.t list
(** [undefined_atoms i ~base] is the paper's [I-bar]: atoms of [base] that
    are neither true nor false in [i]. *)

val is_total : t -> base:Atom.t list -> bool
(** Total w.r.t. a Herbrand base: no undefined atom. *)

val subset : t -> t -> bool
(** [subset i j] iff every literal of [i] is a literal of [j]. *)

val equal : t -> t -> bool

val union : t -> t -> t option
(** Union of the literal sets; [None] if inconsistent. *)

val diff : t -> t -> t
(** Literals of the first interpretation not in the second. *)

val fold : (Atom.t -> bool -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Atom.t -> bool -> unit) -> t -> unit
val for_all : (Atom.t -> bool -> bool) -> t -> bool
val exists : (Atom.t -> bool -> bool) -> t -> bool

val sat_body : t -> Literal.t list -> bool
(** [sat_body i b] iff every literal of [b] is true in [i] ([B(r) <= I]) —
    the rule is {e applicable}. *)

val blocked_body : t -> Literal.t list -> bool
(** [blocked_body i b] iff some literal of [b] has its complement in [i] —
    the rule is {e blocked} (paper, Definition 2). *)

val value_conj : t -> Literal.t list -> value
(** Three-valued value of a conjunction: the minimum of the literal values
    under [False < Undefined < True]; [True] for the empty conjunction
    (paper, Section 3). *)

val compare_value : value -> value -> int
(** Ordering [False < Undefined < True]. *)

val pp : Format.formatter -> t -> unit
val pp_value : Format.formatter -> value -> unit
val to_string : t -> string
