(** Unification and one-way matching for terms, atoms and literals. *)

val term : ?init:Subst.t -> Term.t -> Term.t -> Subst.t option
(** [term t1 t2] is a most general unifier of [t1] and [t2] (with occurs
    check), extending [init] if given; [None] if the terms do not unify. *)

val atom : ?init:Subst.t -> Atom.t -> Atom.t -> Subst.t option
(** Unify two atoms (same predicate symbol and arity, argument-wise). *)

val literal : ?init:Subst.t -> Literal.t -> Literal.t -> Subst.t option
(** Unify two literals of the same polarity. *)

val match_term : ?init:Subst.t -> Term.t -> Term.t -> Subst.t option
(** [match_term pat t] is one-way matching: a substitution [s] with
    [Subst.apply_term s pat = t], binding only variables of [pat].  The
    subject [t] is treated as rigid (its variables are constants). *)

val match_atom : ?init:Subst.t -> Atom.t -> Atom.t -> Subst.t option
val match_literal : ?init:Subst.t -> Literal.t -> Literal.t -> Subst.t option
