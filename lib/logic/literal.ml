type t = { pol : bool; atom : Atom.t }

let pos atom = { pol = true; atom }
let neg_atom atom = { pol = false; atom }
let make pol atom = { pol; atom }
let neg l = { l with pol = not l.pol }
let is_positive l = l.pol
let is_negative l = not l.pol

let compare a b =
  let c = Atom.compare a.atom b.atom in
  if c <> 0 then c else Bool.compare a.pol b.pol

let equal a b = compare a b = 0
let complementary a b = a.pol <> b.pol && Atom.equal a.atom b.atom
let hash = Hashtbl.hash
let is_ground l = Atom.is_ground l.atom
let vars l = Atom.vars l.atom
let add_vars l acc = Atom.add_vars l.atom acc
let rename f l = { l with atom = Atom.rename f l.atom }

let pp ppf l =
  if l.pol then Atom.pp ppf l.atom else Format.fprintf ppf "-%a" Atom.pp l.atom

let to_string l = Format.asprintf "%a" pp l

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let consistent s = for_all (fun l -> not (mem (neg l) s)) s
  let positives s = filter is_positive s
  let negatives s = filter is_negative s
end

module Map = Map.Make (Ord)
