(** Rules ("negative rules" in the paper):

    {v Q0 <- Q1, ..., Qm v}

    where the [Qi] are literals, [Q0] is the head and [Q1, ..., Qm] the
    body.  A rule is {e seminegative} if its head is positive, {e positive}
    (a Horn clause) if additionally its whole body is positive, and a
    {e fact} if the body is empty (paper, Section 2).

    A rule may optionally carry a {e name} ([name : head :- body.] in
    surface syntax) so that rule-preference declarations can refer to it.
    The name is part of the rule's identity: it participates in
    {!compare}/{!equal} and is printed by {!pp}, so named rules
    round-trip through source text, fingerprints and the WAL. *)

type t = private {
  name : string option;
  head : Literal.t;
  body : Literal.t list;
}

val make : Literal.t -> Literal.t list -> t
(** Unnamed rule. *)

val fact : Literal.t -> t
(** A rule with empty body. *)

val with_name : string -> t -> t
(** The same rule carrying a name. *)

val name : t -> string option

val head : t -> Literal.t
(** [H(r)] in the paper. *)

val body : t -> Literal.t list
(** [B(r)] in the paper (as a list; order is irrelevant semantically). *)

val body_set : t -> Literal.Set.t

val is_fact : t -> bool
val is_seminegative : t -> bool
val is_positive : t -> bool
val is_ground : t -> bool

val vars : t -> string list
(** Variables of the rule, head first, in first-occurrence order. *)

val rename : (string -> string) -> t -> t

val apply : Subst.t -> t -> t
(** Apply a substitution to head and body. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val predicates : t -> (string * int) list
(** Predicate symbols (with arity) occurring in the rule, duplicates
    removed. *)

val pp : Format.formatter -> t -> unit
(** Surface syntax: [head :- b1, ..., bn.] or [head.] for facts. *)

val to_string : t -> string

module Set : Set.S with type elt = t
