let rec occurs x s = function
  | Term.Var y -> (
    if String.equal x y then true
    else
      match Subst.find y s with
      | None -> false
      | Some t -> occurs x s t)
  | Term.Int _ | Term.Sym _ -> false
  | Term.App (_, args) -> List.exists (occurs x s) args

let rec unify_terms s t1 t2 =
  let t1 = Subst.apply_term s t1 and t2 = Subst.apply_term s t2 in
  match t1, t2 with
  | Term.Var x, Term.Var y when String.equal x y -> Some s
  | Term.Var x, t | t, Term.Var x ->
    if occurs x s t then None else Some (Subst.bind x t s)
  | Term.Int a, Term.Int b -> if a = b then Some s else None
  | Term.Sym a, Term.Sym b -> if String.equal a b then Some s else None
  | Term.App (f, args1), Term.App (g, args2)
    when String.equal f g && List.length args1 = List.length args2 ->
    unify_lists s args1 args2
  | _ -> None

and unify_lists s l1 l2 =
  match l1, l2 with
  | [], [] -> Some s
  | x :: xs, y :: ys -> (
    match unify_terms s x y with
    | None -> None
    | Some s -> unify_lists s xs ys)
  | _ -> None

let term ?(init = Subst.empty) t1 t2 = unify_terms init t1 t2

let atom ?(init = Subst.empty) (a : Atom.t) (b : Atom.t) =
  if String.equal a.pred b.pred && List.length a.args = List.length b.args
  then unify_lists init a.args b.args
  else None

let literal ?init (a : Literal.t) (b : Literal.t) =
  if a.pol = b.pol then atom ?init a.atom b.atom else None

let rec match_terms s pat t =
  match pat, t with
  | Term.Var x, _ -> (
    match Subst.find x s with
    | None -> Some (Subst.bind x t s)
    | Some t' -> if Term.equal t t' then Some s else None)
  | Term.Int a, Term.Int b -> if a = b then Some s else None
  | Term.Sym a, Term.Sym b -> if String.equal a b then Some s else None
  | Term.App (f, args1), Term.App (g, args2)
    when String.equal f g && List.length args1 = List.length args2 ->
    match_lists s args1 args2
  | _ -> None

and match_lists s l1 l2 =
  match l1, l2 with
  | [], [] -> Some s
  | x :: xs, y :: ys -> (
    match match_terms s x y with
    | None -> None
    | Some s -> match_lists s xs ys)
  | _ -> None

let match_term ?(init = Subst.empty) pat t = match_terms init pat t

let match_atom ?(init = Subst.empty) (pat : Atom.t) (a : Atom.t) =
  if String.equal pat.pred a.pred && List.length pat.args = List.length a.args
  then match_lists init pat.args a.args
  else None

let match_literal ?init (pat : Literal.t) (l : Literal.t) =
  if pat.pol = l.pol then match_atom ?init pat.atom l.atom else None
