type value = True | False | Undefined

type t = bool Atom.Map.t

let empty = Atom.Map.empty
let is_empty = Atom.Map.is_empty
let cardinal = Atom.Map.cardinal

let value i a =
  match Atom.Map.find_opt a i with
  | None -> Undefined
  | Some true -> True
  | Some false -> False

let value_lit i (l : Literal.t) =
  match value i l.atom, l.pol with
  | Undefined, _ -> Undefined
  | True, pol -> if pol then True else False
  | False, pol -> if pol then False else True

let holds i l = value_lit i l = True

let set i a b =
  match Atom.Map.find_opt a i with
  | Some b' when b <> b' ->
    invalid_arg
      (Printf.sprintf "Interp.set: inconsistent assignment to %s"
         (Atom.to_string a))
  | _ -> Atom.Map.add a b i

let add_lit i (l : Literal.t) = set i l.atom l.pol

let add_lit_opt i (l : Literal.t) =
  match Atom.Map.find_opt l.atom i with
  | Some b when b <> l.pol -> None
  | _ -> Some (Atom.Map.add l.atom l.pol i)

let unset i a = Atom.Map.remove a i
let of_literals ls = List.fold_left add_lit empty ls

let of_literals_opt ls =
  List.fold_left
    (fun acc l ->
      match acc with
      | None -> None
      | Some i -> add_lit_opt i l)
    (Some empty) ls

let to_literals i =
  Atom.Map.fold (fun a b acc -> Literal.make b a :: acc) i [] |> List.rev

let to_set i = Literal.Set.of_list (to_literals i)
let defined_atoms i = List.map fst (Atom.Map.bindings i)

let true_atoms i =
  Atom.Map.fold (fun a b acc -> if b then a :: acc else acc) i [] |> List.rev

let false_atoms i =
  Atom.Map.fold (fun a b acc -> if b then acc else a :: acc) i [] |> List.rev

let undefined_atoms i ~base =
  List.filter (fun a -> not (Atom.Map.mem a i)) base

let is_total i ~base = List.for_all (fun a -> Atom.Map.mem a i) base

let subset i j =
  Atom.Map.for_all
    (fun a b ->
      match Atom.Map.find_opt a j with
      | Some b' -> b = b'
      | None -> false)
    i

let equal = Atom.Map.equal Bool.equal

let union i j =
  let exception Clash in
  try
    Some
      (Atom.Map.union
         (fun _ b b' -> if b = b' then Some b else raise Clash)
         i j)
  with Clash -> None

let diff i j =
  Atom.Map.filter
    (fun a b ->
      match Atom.Map.find_opt a j with
      | Some b' -> b <> b'
      | None -> true)
    i

let fold = Atom.Map.fold
let iter = Atom.Map.iter
let for_all = Atom.Map.for_all
let exists = Atom.Map.exists
let sat_body i body = List.for_all (fun l -> holds i l) body
let blocked_body i body = List.exists (fun l -> value_lit i l = False) body

let compare_value v1 v2 =
  let rank = function
    | False -> 0
    | Undefined -> 1
    | True -> 2
  in
  Int.compare (rank v1) (rank v2)

let value_conj i body =
  List.fold_left
    (fun acc l ->
      let v = value_lit i l in
      if compare_value v acc < 0 then v else acc)
    True body

let pp_value ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Undefined -> Format.pp_print_string ppf "undefined"

let pp ppf i =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Literal.pp)
    (to_literals i)

let to_string i = Format.asprintf "%a" pp i
