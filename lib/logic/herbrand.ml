type signature = {
  constants : Term.t list;
  functions : (string * int) list;
  predicates : (string * int) list;
}

let signature_of_rules rules =
  let constants = ref Term.Set.empty in
  let functions = Hashtbl.create 16 in
  let predicates = Hashtbl.create 16 in
  let rec scan_term = function
    | Term.Var _ -> ()
    | (Term.Int _ | Term.Sym _) as c -> constants := Term.Set.add c !constants
    | Term.App (f, args) ->
      Hashtbl.replace functions (f, List.length args) ();
      List.iter scan_term args
  in
  let scan_literal (l : Literal.t) =
    Hashtbl.replace predicates (l.atom.pred, Atom.arity l.atom) ();
    List.iter scan_term l.atom.args
  in
  let scan_rule (r : Rule.t) =
    scan_literal r.head;
    List.iter scan_literal r.body
  in
  List.iter scan_rule rules;
  let constants =
    if Term.Set.is_empty !constants then [ Term.Sym "a0" ]
    else Term.Set.elements !constants
  in
  let to_list tbl =
    Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
  in
  { constants; functions = to_list functions; predicates = to_list predicates }

(* All tuples of length [n] over [elems], in lexicographic order. *)
let rec tuples elems n =
  if n = 0 then [ [] ]
  else
    let rest = tuples elems (n - 1) in
    List.concat_map (fun e -> List.map (fun t -> e :: t) rest) elems

let universe ?(depth = 0) sg =
  let rec grow level terms =
    if level >= depth || sg.functions = [] then terms
    else
      let next =
        List.concat_map
          (fun (f, arity) ->
            List.map (fun args -> Term.App (f, args)) (tuples terms arity))
          sg.functions
      in
      grow (level + 1)
        (Term.Set.elements (Term.Set.of_list (terms @ next)))
  in
  grow 0 sg.constants

let base ?depth ?(skip = fun _ -> false) sg =
  let terms = universe ?depth sg in
  List.concat_map
    (fun (p, arity) ->
      if skip (p, arity) then []
      else List.map (fun args -> Atom.make p args) (tuples terms arity))
    sg.predicates
  |> Atom.Set.of_list |> Atom.Set.elements

let instantiations univ vars =
  let rec go vars s () =
    match vars with
    | [] -> Seq.Cons (s, Seq.empty)
    | v :: rest ->
      (List.to_seq univ
      |> Seq.concat_map (fun t -> go rest (Subst.bind v t s)))
        ()
  in
  go vars Subst.empty
