(** Substitutions: finite maps from variable names to terms.

    Ground instances of rules (paper, Section 2) are obtained by applying a
    substitution that maps every variable to an element of the Herbrand
    universe. *)

type t

val empty : t
val is_empty : t -> bool

val singleton : string -> Term.t -> t

val bind : string -> Term.t -> t -> t
(** [bind x t s] adds the binding [x -> t].  Raises [Invalid_argument] if
    [x] is already bound to a different term. *)

val find : string -> t -> Term.t option

val of_list : (string * Term.t) list -> t
val bindings : t -> (string * Term.t) list

val apply_term : t -> Term.t -> Term.t
(** Apply the substitution to a term.  Bindings are applied repeatedly (so
    triangular substitutions produced by unification resolve fully); a
    variable already under expansion is not expanded again, which keeps
    application terminating even on self-referential bindings such as
    [X -> f(X)] (one-way matching can produce these when pattern and
    subject share variable names). *)

val apply_atom : t -> Atom.t -> Atom.t
val apply_literal : t -> Literal.t -> Literal.t

val compose : t -> t -> t
(** [compose s1 s2] is the substitution that first applies [s1], then [s2]:
    [apply (compose s1 s2) t = apply s2 (apply s1 t)]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
