(** Herbrand universe and base (paper, Section 2).

    The Herbrand universe [H_P] of a program is the set of ground terms
    built from the constants and function symbols occurring in it; the
    Herbrand base [B_P] is the set of ground atoms over the predicate
    symbols of the program with arguments in [H_P].  With function symbols
    the universe is infinite, so generation takes a [depth] bound. *)

type signature = {
  constants : Term.t list;  (** [Int] and [Sym] constants, deduplicated *)
  functions : (string * int) list;  (** function symbols with arity *)
  predicates : (string * int) list;  (** predicate symbols with arity *)
}

val signature_of_rules : Rule.t list -> signature
(** Collect the signature of a rule list.  If the program has no constant at
    all, a single fresh constant [a0] is supplied so that the universe is
    non-empty (the usual convention). *)

val universe : ?depth:int -> signature -> Term.t list
(** Ground terms of nesting depth at most [depth] (default 0, i.e. just the
    constants).  Sorted, deduplicated. *)

val base : ?depth:int -> ?skip:(string * int -> bool) -> signature -> Atom.t list
(** Ground atoms over the signature's predicates with arguments drawn from
    [universe ~depth].  [skip] filters out predicates (used to omit builtin
    comparison predicates).  Sorted, deduplicated. *)

val instantiations : Term.t list -> string list -> Subst.t Seq.t
(** [instantiations universe vars]: all substitutions mapping each variable
    of [vars] to an element of [universe] (the paper's mappings [theta] used
    to form ground instances). *)
