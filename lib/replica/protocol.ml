(* The replica's side of the replication verbs: request builders and
   reply decoders over the ordinary wire protocol.  Pure; see
   protocol.mli. *)

module Wire = Server.Wire
module Hex = Server.Hex
module Record = Persist.Record

type refusal = { kind : string; message : string; epoch : int option }

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let addr_field = function
  | None -> []
  | Some addr -> [ ("addr", Wire.String addr) ]

let hello ?addr ~seq ~epoch ~rid () =
  Wire.Obj
    ([ ("op", Wire.String "hello");
       ("seq", Wire.Int seq);
       ("protocol", Wire.Int Wire.protocol_revision);
       ("epoch", Wire.Int epoch);
       ("rid", Wire.String rid)
     ]
    @ addr_field addr)

let pull ?addr ~from ~max ~epoch ~rid ~durable () =
  Wire.Obj
    ([ ("op", Wire.String "pull");
       ("from", Wire.Int from);
       ("max", Wire.Int max);
       ("epoch", Wire.Int epoch);
       ("rid", Wire.String rid);
       ("durable", Wire.Int durable)
     ]
    @ addr_field addr)

let fetch_snapshot ~epoch =
  Wire.Obj [ ("op", Wire.String "fetch_snapshot"); ("epoch", Wire.Int epoch) ]

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

let int_field j name =
  match Wire.member name j with Some (Wire.Int i) -> Some i | _ -> None

let str_field j name =
  match Wire.member name j with Some (Wire.String s) -> Some s | _ -> None

let refusal_of j =
  match Wire.member "error" j with
  | Some e ->
    let kind =
      match str_field e "kind" with Some k -> k | None -> "internal"
    in
    let message =
      match str_field e "message" with Some m -> m | None -> ""
    in
    (* fencing refusals name the refusing side's term, so the link can
       tell "the primary moved ahead" from "the primary was deposed" *)
    Some { kind; message; epoch = int_field e "epoch" }
  | None -> None

(* Route a response by status: [ok] goes to the verb-specific decoder,
   a typed refusal comes back as [`Refused] for the link's policy, and
   anything else is [`Garbled] — the primary is not speaking the
   protocol we expect. *)
let classify j k =
  match Wire.status_of_response j with
  | `Ok -> k j
  | `Error -> (
    match refusal_of j with
    | Some r -> Error (`Refused r)
    | None -> Error (`Garbled "error response without an error object"))
  | `Partial -> Error (`Garbled "unexpected partial response")
  | `Unknown -> Error (`Garbled "response carries no status")

type hello_reply = {
  role : string;
  seq : int;
  epoch : int;
  action : [ `Tail | `Snapshot ];
}

let decode_hello j =
  classify j (fun j ->
      match
        ( str_field j "role",
          int_field j "seq",
          int_field j "epoch",
          str_field j "action" )
      with
      | Some role, Some seq, Some epoch, Some "tail" ->
        Ok { role; seq; epoch; action = `Tail }
      | Some role, Some seq, Some epoch, Some "snapshot" ->
        Ok { role; seq; epoch; action = `Snapshot }
      | Some _, Some _, Some _, Some a ->
        Error (`Garbled (Printf.sprintf "unknown handshake action %S" a))
      | _ -> Error (`Garbled "malformed hello reply"))

let decode_pull j =
  classify j (fun j ->
      match
        ( int_field j "seq",
          int_field j "epoch",
          int_field j "count",
          str_field j "records" )
      with
      | Some seq, Some epoch, Some count, Some hexed -> (
        match Hex.decode hexed with
        | Error msg -> Error (`Garbled ("bad hex in shipped records: " ^ msg))
        | Ok raw ->
          (* the payload is raw WAL frames, CRCs intact — the same walk
             crash recovery does *)
          let rec go pos acc n =
            match Record.unframe raw ~pos with
            | Record.End ->
              if n = count then Ok (seq, epoch, List.rev acc)
              else
                Error
                  (`Garbled
                     (Printf.sprintf
                        "record count mismatch: reply says %d, payload \
                         holds %d"
                        count n))
            | Record.Torn detail ->
              Error (`Garbled ("torn shipped record: " ^ detail))
            | Record.Frame { payload; next } -> (
              match Record.decode_mutation payload with
              | Ok m -> go next (m :: acc) (n + 1)
              | Error detail ->
                Error (`Garbled ("undecodable shipped mutation: " ^ detail)))
          in
          go 0 [] 0)
      | _ -> Error (`Garbled "malformed pull reply"))

let decode_snapshot j =
  classify j (fun j ->
      match
        (int_field j "seq", int_field j "epoch", str_field j "snapshot")
      with
      | Some seq, Some epoch, Some hexed -> (
        match Hex.decode hexed with
        | Error msg -> Error (`Garbled ("bad hex in snapshot image: " ^ msg))
        | Ok image -> (
          match Record.decode_snapshot image with
          | Ok (s, _, dump) when s = seq -> Ok (seq, epoch, dump)
          | Ok (s, _, _) ->
            Error
              (`Garbled
                 (Printf.sprintf
                    "snapshot sequence mismatch: reply says %d, image says \
                     %d"
                    seq s))
          | Error detail ->
            Error (`Garbled ("undecodable snapshot image: " ^ detail))))
      | _ -> Error (`Garbled "malformed snapshot reply"))
