(** The replica's half of the replication protocol: builders for the
    [hello]/[pull]/[fetch_snapshot] requests and decoders for their
    replies.  Pure — no sockets — so the codec round-trips are testable
    without a server.

    Every request carries the sender's replication [epoch] (the fencing
    term) and the replies echo the server's, so either side can detect
    that it is talking across a promotion; requests also carry the
    replica's instance id [rid], and pulls a [durable] sequence number —
    the piggybacked durability confirmation synchronous commit waits
    for.

    Decoders distinguish a {e refusal} (the primary answered with a
    typed error — policy lives in {!Link}, e.g. a ["behind"] refusal
    triggers a snapshot bootstrap, a ["fenced"] one is fatal) from a
    {e garbled} reply (the bytes are not the protocol — the peer is the
    wrong kind of server or the stream is corrupt). *)

type refusal = { kind : string; message : string; epoch : int option }
(** A typed error response: the wire error [kind] and its message.
    ["fenced"] refusals also carry the refusing server's epoch, so the
    link can distinguish a primary that moved ahead (re-handshake and
    adopt the term) from one that was deposed (never follow it). *)

(** {1 Requests} *)

val hello :
  ?addr:string -> seq:int -> epoch:int -> rid:string -> unit ->
  Server.Wire.json
(** Handshake announcing our last applied sequence number, our
    {!Server.Wire.protocol_revision}, the highest epoch we have seen
    and our instance id.  [addr] advertises the address we serve
    clients on, for the primary's [stats] topology. *)

val pull :
  ?addr:string ->
  from:int -> max:int -> epoch:int -> rid:string -> durable:int ->
  unit ->
  Server.Wire.json
(** Ask for up to [max] records after [from].  An empty pull doubles as
    a heartbeat; [durable] confirms our stable-storage horizon and
    [addr] (re)advertises our client-facing address. *)

val fetch_snapshot : epoch:int -> Server.Wire.json

(** {1 Replies} *)

type hello_reply = {
  role : string;  (** the primary's current role *)
  seq : int;  (** the primary's sequence number *)
  epoch : int;  (** the primary's replication epoch *)
  action : [ `Tail | `Snapshot ];
      (** what the primary tells us to do: tail the log, or bootstrap
          from a snapshot because our position was compacted away *)
}

val decode_hello :
  Server.Wire.json ->
  (hello_reply, [ `Refused of refusal | `Garbled of string ]) result

val decode_pull :
  Server.Wire.json ->
  ( int * int * Kb.Store.mutation list,
    [ `Refused of refusal | `Garbled of string ] )
  result
(** [(primary_seq, primary_epoch, mutations)] — the shipped records
    decoded through the same {!Persist.Record} walk crash recovery uses
    (CRCs verified end to end; a count mismatch or torn frame is
    [`Garbled]). *)

val decode_snapshot :
  Server.Wire.json ->
  ( int * int * Kb.Store.dump,
    [ `Refused of refusal | `Garbled of string ] )
  result
(** [(seq, epoch, dump)] from a bootstrap image. *)
