(** The replica's half of the replication protocol: builders for the
    [hello]/[pull]/[fetch_snapshot] requests and decoders for their
    replies.  Pure — no sockets — so the codec round-trips are testable
    without a server.

    Decoders distinguish a {e refusal} (the primary answered with a
    typed error — policy lives in {!Link}, e.g. a ["behind"] refusal
    triggers a snapshot bootstrap) from a {e garbled} reply (the bytes
    are not the protocol — the peer is the wrong kind of server or the
    stream is corrupt). *)

type refusal = { kind : string; message : string }
(** A typed error response: the wire error [kind] and its message. *)

(** {1 Requests} *)

val hello : seq:int -> Server.Wire.json
(** Handshake announcing our last applied sequence number and our
    {!Server.Wire.protocol_revision}. *)

val pull : from:int -> max:int -> Server.Wire.json
(** Ask for up to [max] records after [from].  An empty pull doubles as
    a heartbeat. *)

val fetch_snapshot : Server.Wire.json

(** {1 Replies} *)

type hello_reply = {
  role : string;  (** the primary's current role *)
  seq : int;  (** the primary's sequence number *)
  action : [ `Tail | `Snapshot ];
      (** what the primary tells us to do: tail the log, or bootstrap
          from a snapshot because our position was compacted away *)
}

val decode_hello :
  Server.Wire.json ->
  (hello_reply, [ `Refused of refusal | `Garbled of string ]) result

val decode_pull :
  Server.Wire.json ->
  ( int * Kb.Store.mutation list,
    [ `Refused of refusal | `Garbled of string ] )
  result
(** [(primary_seq, mutations)] — the shipped records decoded through the
    same {!Persist.Record} walk crash recovery uses (CRCs verified end
    to end; a count mismatch or torn frame is [`Garbled]). *)

val decode_snapshot :
  Server.Wire.json ->
  ( int * Kb.Store.dump,
    [ `Refused of refusal | `Garbled of string ] )
  result
(** [(seq, dump)] from a bootstrap image. *)
