(** The replica side of log shipping: a pull loop over a {!Client}
    connection that keeps a local durable KB in lockstep with a primary.

    A link owns the replica's relationship to its primary: it connects,
    handshakes ({!Protocol.hello}) announcing the local {!Persist.seq}
    and epoch, then either tails the primary's log with [pull] requests
    — applying each shipped batch through {!Kb.Session.apply_batch}
    under the engine lock, so the replica's own WAL tracks its store
    and the result cache is repaired through the same mutation deltas
    the primary used — or bootstraps from a snapshot when the primary has compacted
    past the replica's position.  An empty pull is the heartbeat; the
    loop sleeps [poll_interval] between them.

    {b Epochs.}  Every request carries the replica's fencing term.  A
    primary that replies with a {e higher} epoch is legitimate — the
    link adopts the term durably ({!Persist.adopt_epoch}) and keeps
    tailing; a primary with a {e lower} epoch has been deposed by a
    promotion this replica already witnessed, so the link refuses to
    follow it (fatal, like the server-side ["fenced"] refusal).  After
    each applied batch the link waits for local durability and reports
    the stable-storage horizon on its next pull — the confirmation
    synchronous commit on the primary waits for.

    {b Faults.}  Connection errors and garbled replies drop the
    connection and retry forever under a jittered exponential backoff
    ({!Governor.Backoff}; reset on a successful handshake, logged once
    per distinct message); typed refusals are policy: ["behind"]
    triggers a snapshot bootstrap, ["fenced"], ["handshake"] (protocol
    mismatch, diverged history) and ["proto"] (a primary too old to know
    the verbs) halt replication — the replica keeps serving reads at its
    last applied state.

    {b Promotion} ({!promote}, or {!request_promote} from a signal
    handler) flips the role to ["primary"], bumps the epoch durably
    ({!Persist.bump_epoch}) and severs the stream; the engine's write
    gate reads the role through {!status}, so writes are accepted from
    that point on.  Promotion is atomic with respect to the apply path:
    the engine's promote closure already holds the engine lock, and the
    loop's signal-triggered promotion takes it — a promotion never lands
    in the middle of a shipped batch.

    {b Locking.}  The link applies mutations inside
    {!Server.Engine.exclusively}; nothing here takes the link's own lock
    while holding the engine's, so the engine-side closures (which run
    under the engine lock and call {!status}/{!promote}) cannot
    deadlock. *)

type t

type config = {
  primary : Server.Daemon.address;
  poll_interval : float;  (** seconds between heartbeat pulls *)
  batch : int;  (** records per pull request *)
  retry_base : float;
      (** first reconnect delay, seconds (also bounds one connect
          attempt, and so how long {!stop} can block) *)
  retry_cap : float;  (** reconnect backoff ceiling, seconds *)
  advertise : string option;
      (** client-reachable address sent with [hello]/[pull] so the
          primary can publish this replica in its [stats] topology *)
  log : string -> unit;  (** one-line progress/diagnostic sink *)
}

val default_config : Server.Daemon.address -> config
(** 50 ms poll, batch 512, reconnect backoff 50 ms doubling to a 1 s
    cap, silent log. *)

val create :
  ?metrics:Governor.Metrics.t ->
  engine:Server.Engine.t ->
  session:Kb.Session.t ->
  persist:Persist.t ->
  config ->
  t
(** Wire a link over the replica's engine, session and open data
    directory (the session's [on_mutation] observer must already append
    to [persist] — the daemon sets that up).  [metrics] receives
    [repl_applied]/[repl_bootstraps].  Each link gets a fresh instance
    id ([rid]) identifying it in the primary's ack ledger. *)

val step :
  t ->
  [ `Applied of int  (** a pull shipped and applied this many records *)
  | `Ready  (** progress without records: connected, greeted, or
                bootstrapped — call again *)
  | `Idle  (** in sync; nothing to do until the primary moves *)
  | `Retry of string  (** transient failure; connection dropped *)
  | `Fatal of string  (** replication cannot continue (mismatch,
                          divergence, fencing); reads keep working *)
  | `Stopped  (** the link was stopped or promoted *) ]
(** One protocol step — connect, greet, pull or bootstrap, whichever is
    next.  The background loop is [step] in a loop; tests drive it
    directly for deterministic schedules.  Exceptions from the apply
    path (e.g. fault-injection budgets) propagate. *)

val run : t -> unit
(** The loop {!start} spawns: steps until stopped, promoted or fatal,
    sleeping [poll_interval] when idle and the (jittered, growing)
    backoff delay after a transient failure. *)

val start : t -> unit
(** Spawn {!run} in a background thread (idempotent). *)

val stop : t -> unit
(** Stop the loop, interrupt a blocked request, join the thread and
    close the connection.  Idempotent; safe without {!start}. *)

val disconnect : t -> unit
(** Drop the current connection (the loop reconnects on its next step).
    Fault-injection surface for tests. *)

val promote : t -> (string, string) result
(** Leave the stream and become a standalone primary: [Ok "primary"]
    once, after durably bumping the epoch; [Error] if already promoted
    (idempotent — the epoch is bumped exactly once).  Callable from the
    engine's promote closure (under the engine lock). *)

val request_promote : t -> unit
(** Async-signal-safe promotion request: sets a flag and wakes the
    loop, which runs {!promote} under the engine lock — never in the
    middle of an apply batch.  The SIGUSR1 handler. *)

type status = {
  role : string;  (** ["replica"], or ["primary"] after promotion *)
  primary : string;  (** printable address of the configured primary *)
  connected : bool;
  last_applied : int;  (** the local {!Persist.seq} *)
  primary_seq : int;  (** the primary's seq at last contact *)
  lag : int;  (** [max 0 (primary_seq - last_applied)] *)
  epoch : int;  (** the local fencing term ({!Persist.epoch}) *)
  bootstraps : int;  (** snapshot bootstraps performed *)
  connect_attempts : int;  (** connection attempts since creation *)
  last_error : string option;
}

val status : t -> status
