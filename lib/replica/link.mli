(** The replica side of log shipping: a pull loop over a {!Client}
    connection that keeps a local durable KB in lockstep with a primary.

    A link owns the replica's relationship to its primary: it connects,
    handshakes ({!Protocol.hello}) announcing the local {!Persist.seq},
    then either tails the primary's log with [pull] requests — applying
    each shipped mutation through {!Kb.Session.apply} under the engine
    lock, so the replica's own WAL and result cache track its store — or
    bootstraps from a snapshot when the primary has compacted past the
    replica's position.  An empty pull is the heartbeat; the loop sleeps
    [poll_interval] between them.

    {b Faults.}  Connection errors and garbled replies drop the
    connection and retry forever (logged once per distinct message);
    typed refusals are policy: ["behind"] triggers a snapshot bootstrap,
    ["handshake"] (protocol mismatch, diverged history) and ["proto"]
    (a primary too old to know the verbs) halt replication — the replica
    keeps serving reads at its last applied state.

    {b Promotion} ({!promote}, or {!request_promote} from a signal
    handler) flips the role to ["primary"] and severs the stream; the
    engine's write gate reads the role through {!status}, so writes are
    accepted from that point on.

    {b Locking.}  The link applies mutations inside
    {!Server.Engine.exclusively}; nothing here takes the link's own lock
    while holding the engine's, so the engine-side closures (which run
    under the engine lock and call {!status}/{!promote}) cannot
    deadlock. *)

type t

type config = {
  primary : Server.Daemon.address;
  poll_interval : float;  (** seconds between heartbeat pulls *)
  batch : int;  (** records per pull request *)
  connect_retry : float;
      (** seconds to retry one connection attempt before backing off to
          the poll cadence (also bounds how long {!stop} can block) *)
  log : string -> unit;  (** one-line progress/diagnostic sink *)
}

val default_config : Server.Daemon.address -> config
(** 50 ms poll, batch 512, 0.5 s connect retry, silent log. *)

val create :
  ?metrics:Governor.Metrics.t ->
  engine:Server.Engine.t ->
  session:Kb.Session.t ->
  persist:Persist.t ->
  config ->
  t
(** Wire a link over the replica's engine, session and open data
    directory (the session's [on_mutation] observer must already append
    to [persist] — the daemon sets that up).  [metrics] receives
    [repl_applied]/[repl_bootstraps]. *)

val step :
  t ->
  [ `Applied of int  (** a pull shipped and applied this many records *)
  | `Ready  (** progress without records: connected, greeted, or
                bootstrapped — call again *)
  | `Idle  (** in sync; nothing to do until the primary moves *)
  | `Retry of string  (** transient failure; connection dropped *)
  | `Fatal of string  (** replication cannot continue (mismatch,
                          divergence); reads keep working *)
  | `Stopped  (** the link was stopped or promoted *) ]
(** One protocol step — connect, greet, pull or bootstrap, whichever is
    next.  The background loop is [step] in a loop; tests drive it
    directly for deterministic schedules.  Exceptions from the apply
    path (e.g. fault-injection budgets) propagate. *)

val run : t -> unit
(** The loop {!start} spawns: steps until stopped, promoted or fatal,
    sleeping [poll_interval] when idle. *)

val start : t -> unit
(** Spawn {!run} in a background thread (idempotent). *)

val stop : t -> unit
(** Stop the loop, interrupt a blocked request, join the thread and
    close the connection.  Idempotent; safe without {!start}. *)

val disconnect : t -> unit
(** Drop the current connection (the loop reconnects on its next step).
    Fault-injection surface for tests. *)

val promote : t -> (string, string) result
(** Leave the stream and become a standalone primary: [Ok "primary"]
    once; [Error] if already promoted.  Callable from the engine's
    promote closure (under the engine lock). *)

val request_promote : t -> unit
(** Async-signal-safe promotion request: sets a flag and wakes the
    loop, which calls {!promote}.  The SIGUSR1 handler. *)

type status = {
  role : string;  (** ["replica"], or ["primary"] after promotion *)
  primary : string;  (** printable address of the configured primary *)
  connected : bool;
  last_applied : int;  (** the local {!Persist.seq} *)
  primary_seq : int;  (** the primary's seq at last contact *)
  lag : int;  (** [max 0 (primary_seq - last_applied)] *)
  bootstraps : int;  (** snapshot bootstraps performed *)
  last_error : string option;
}

val status : t -> status
