(* The replica side of log shipping: a pull loop that keeps a local
   durable KB in lockstep with a primary.  See link.mli for the
   life-cycle and locking contract. *)

module Client = Server.Client
module Engine = Server.Engine
module M = Governor.Metrics
module Backoff = Governor.Backoff

type config = {
  primary : Server.Daemon.address;
  poll_interval : float;
  batch : int;
  retry_base : float;
  retry_cap : float;
  advertise : string option;
  log : string -> unit;
}

let default_config primary =
  { primary;
    poll_interval = 0.05;
    batch = 512;
    retry_base = 0.05;
    retry_cap = 1.0;
    advertise = None;
    log = (fun _ -> ())
  }

let address_to_string = Server.Daemon.address_to_string

(* Instance ids distinguish replicas in the primary's ack ledger; a
   process-wide counter keeps links created in the same microsecond (a
   test spinning up a cluster) distinct. *)
let rid_counter = ref 0

let gen_rid () =
  incr rid_counter;
  Printf.sprintf "r%d-%d-%06x" (Unix.getpid ()) !rid_counter
    (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF)

type conn = { client : Client.t; mutable greeted : bool }

type t = {
  config : config;
  engine : Engine.t;
  session : Kb.Session.t;
  persist : Persist.t;
  metrics : M.t option;
  rid : string;
  backoff : Backoff.t;
  lock : Mutex.t;  (* guards [conn] and the status fields *)
  wake_r : Unix.file_descr;  (* self-pipe: interrupts the poll sleep *)
  wake_w : Unix.file_descr;
  mutable conn : conn option;
  mutable promoted : bool;
  mutable promote_requested : bool;
  mutable stopping : bool;
  mutable closed : bool;
  mutable connected : bool;
  mutable primary_seq : int;
  mutable connect_attempts : int;
  mutable last_error : string option;
  mutable bootstraps : int;
  mutable thread : Thread.t option;
}

type status = {
  role : string;
  primary : string;
  connected : bool;
  last_applied : int;
  primary_seq : int;
  lag : int;
  epoch : int;
  bootstraps : int;
  connect_attempts : int;
  last_error : string option;
}

let create ?metrics ~engine ~session ~persist config =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  { config;
    engine;
    session;
    persist;
    metrics;
    rid = gen_rid ();
    backoff =
      (* distinct seeds per primary address de-correlate replicas of
         different servers; the per-process rid counter de-correlates
         siblings *)
      Backoff.make ~base:config.retry_base ~cap:config.retry_cap
        ~seed:(Hashtbl.hash (address_to_string config.primary, !rid_counter))
        ();
    lock = Mutex.create ();
    wake_r;
    wake_w;
    conn = None;
    promoted = false;
    promote_requested = false;
    stopping = false;
    closed = false;
    connected = false;
    primary_seq = 0;
    connect_attempts = 0;
    last_error = None;
    bootstraps = 0;
    thread = None
  }

let bump t name n =
  match t.metrics with Some m -> M.add m name n | None -> ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let drop t =
  locked t (fun () ->
      (match t.conn with Some c -> Client.close c.client | None -> ());
      t.conn <- None;
      t.connected <- false)

let disconnect t = drop t

(* ------------------------------------------------------------------ *)
(* One protocol step                                                   *)
(* ------------------------------------------------------------------ *)

(* Map a refusal of a handshake-ish request to a step result.  A
   ["proto"] refusal means the primary's decoder does not know the verb
   at all — an old server — so it gets the typed mismatch message
   instead of a bare decode failure.  A ["fenced"] refusal is read
   through its epoch: a server {e ahead} of us witnessed a promotion we
   have not — reconnect and re-handshake to adopt the term; a server
   {e behind} us was deposed — following it could fork history, so
   replication halts. *)
let refused t (r : Protocol.refusal) =
  drop t;
  match r.kind with
  | "fenced" -> (
    match r.epoch with
    | Some theirs when theirs > Persist.epoch t.persist ->
      `Retry ("re-handshaking after a promotion upstream: " ^ r.message)
    | _ -> `Fatal r.message)
  | "handshake" | "input" | "read_only" -> `Fatal r.message
  | "proto" ->
    `Fatal
      "primary does not speak the replication protocol (protocol revision \
       mismatch — upgrade the primary)"
  | _ -> `Retry r.message

(* The hello reply carries the primary's fencing term: adopt a higher
   one durably (a promotion happened somewhere upstream); refuse a
   lower one — that primary was deposed and must not be followed. *)
let reconcile_epoch t ~theirs =
  let mine = Persist.epoch t.persist in
  if theirs < mine then begin
    drop t;
    Error
      (Printf.sprintf
         "fenced: primary is at epoch %d but we have seen epoch %d — it \
          was deposed by a promotion and must not be followed"
         theirs mine)
  end
  else begin
    if theirs > mine then begin
      Engine.exclusively t.engine (fun () ->
          Persist.adopt_epoch t.persist theirs);
      t.config.log
        (Printf.sprintf "replication: adopted epoch %d from primary" theirs)
    end;
    Ok ()
  end

let bootstrap t c =
  let epoch = Persist.epoch t.persist in
  match Client.request c.client (Protocol.fetch_snapshot ~epoch) with
  | Error msg ->
    drop t;
    `Retry ("snapshot fetch failed: " ^ msg)
  | Ok reply -> (
    match Protocol.decode_snapshot reply with
    | Ok (seq, snap_epoch, dump) ->
      (* replace store and data directory atomically with respect to
         request workers; the session cache is stale afterwards *)
      Engine.exclusively t.engine (fun () ->
          Persist.install_snapshot t.persist ~seq ~epoch:snap_epoch dump;
          Kb.Session.invalidate t.session);
      locked t (fun () ->
          t.bootstraps <- t.bootstraps + 1;
          if seq > t.primary_seq then t.primary_seq <- seq);
      bump t "repl_bootstraps" 1;
      t.config.log
        (Printf.sprintf "replication: bootstrapped from snapshot at seq %d"
           seq);
      `Ready
    | Error (`Refused r) -> refused t r
    | Error (`Garbled msg) ->
      drop t;
      `Retry ("garbled snapshot reply: " ^ msg))

let greet t c =
  let seq = Persist.seq t.persist in
  let epoch = Persist.epoch t.persist in
  match
    Client.request c.client
      (Protocol.hello ?addr:t.config.advertise ~seq ~epoch ~rid:t.rid ())
  with
  | Error msg ->
    drop t;
    `Retry ("handshake failed: " ^ msg)
  | Ok reply -> (
    match Protocol.decode_hello reply with
    | Ok h -> (
      match reconcile_epoch t ~theirs:h.epoch with
      | Error msg -> `Fatal msg
      | Ok () -> (
        c.greeted <- true;
        Backoff.reset t.backoff;
        locked t (fun () ->
            t.connected <- true;
            t.primary_seq <- h.seq;
            t.last_error <- None);
        match h.action with `Tail -> `Ready | `Snapshot -> bootstrap t c))
    | Error (`Refused r) -> refused t r
    | Error (`Garbled msg) ->
      drop t;
      `Retry ("garbled handshake reply: " ^ msg))

let pull t c =
  let from = Persist.seq t.persist in
  let epoch = Persist.epoch t.persist in
  (* [from] doubles as the durable horizon: the previous batch's
     [wait_durable] ran before this pull, so every local sequence up to
     it is on stable storage — the confirmation the primary's
     synchronous commit is waiting for *)
  match
    Client.request c.client
      (Protocol.pull ?addr:t.config.advertise ~from ~max:t.config.batch
         ~epoch ~rid:t.rid ~durable:from ())
  with
  | Error msg ->
    drop t;
    `Retry ("pull failed: " ^ msg)
  | Ok reply -> (
    match Protocol.decode_pull reply with
    | Ok (seq, _epoch, mutations) -> (
      locked t (fun () -> t.primary_seq <- seq);
      match mutations with
      | [] -> `Idle
      | ms ->
        (* replay under the engine lock; the session applies the whole
           batch under one publish, so readers jump straight from the
           pre-batch snapshot to the post-batch one (the on_mutation
           observer still logs record by record, in order) *)
        Engine.exclusively t.engine (fun () ->
            Kb.Session.apply_batch t.session ms);
        (* settle the batch on stable storage before confirming it —
           the next pull's [durable] field must not promise more than
           fsync delivered *)
        Persist.wait_durable t.persist;
        let n = List.length ms in
        bump t "repl_applied" n;
        `Applied n)
    | Error (`Refused r) when r.kind = "behind" ->
      (* our position was compacted away under us *)
      bootstrap t c
    | Error (`Refused r) -> refused t r
    | Error (`Garbled msg) ->
      drop t;
      `Retry ("garbled pull reply: " ^ msg))

let step t =
  if t.stopping || t.promoted then `Stopped
  else
    match t.conn with
    | None -> (
      t.connect_attempts <- t.connect_attempts + 1;
      match Client.connect ~retry:t.config.retry_base t.config.primary with
      | Error msg ->
        locked t (fun () -> t.connected <- false);
        `Retry
          (Printf.sprintf "cannot reach primary at %s: %s"
             (address_to_string t.config.primary)
             msg)
      | Ok client ->
        let c = { client; greeted = false } in
        locked t (fun () -> t.conn <- Some c);
        greet t c)
    | Some c when not c.greeted -> greet t c
    | Some c -> pull t c

(* ------------------------------------------------------------------ *)
(* Promotion, status                                                   *)
(* ------------------------------------------------------------------ *)

(* Caller must hold the engine lock (the engine's promote closure does;
   the run loop's self-promotion path takes it) — that is what makes
   promotion atomic with respect to an in-flight apply batch, and what
   lets [bump_epoch] snapshot without racing the workers. *)
let promote t =
  let result, conn =
    locked t (fun () ->
        if t.promoted then
          (Error "already promoted: this server is a standalone primary",
           None)
        else begin
          t.promoted <- true;
          t.promote_requested <- false;
          let c = t.conn in
          t.conn <- None;
          t.connected <- false;
          (Ok "primary", c)
        end)
  in
  (match conn with Some c -> Client.close c.client | None -> ());
  (match result with
  | Ok _ ->
    let epoch = Persist.bump_epoch t.persist in
    t.config.log
      (Printf.sprintf
         "promoted: replication stopped, now a standalone primary at epoch \
          %d"
         epoch)
  | Error _ -> ());
  result

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1 : int)
  with Unix.Unix_error _ -> ()

(* Safe to call from a signal handler: a flag and a pipe write. *)
let request_promote t =
  t.promote_requested <- true;
  wake t

let status t =
  locked t (fun () ->
      let last_applied = Persist.seq t.persist in
      { role = (if t.promoted then "primary" else "replica");
        primary = address_to_string t.config.primary;
        connected = t.connected;
        last_applied;
        primary_seq = t.primary_seq;
        lag = max 0 (t.primary_seq - last_applied);
        epoch = Persist.epoch t.persist;
        bootstraps = t.bootstraps;
        connect_attempts = t.connect_attempts;
        last_error = t.last_error
      })

(* ------------------------------------------------------------------ *)
(* The background loop                                                 *)
(* ------------------------------------------------------------------ *)

let sleep t dt =
  match Unix.select [ t.wake_r ] [] [] dt with
  | readable, _, _ when List.mem t.wake_r readable ->
    let b = Bytes.create 16 in
    (try ignore (Unix.read t.wake_r b 0 16 : int)
     with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let rec run t =
  if t.stopping then ()
  else if t.promote_requested && not t.promoted then begin
    (* under the engine lock so the promotion cannot land while a
       worker-visible apply is mid-batch (lock order engine → link) *)
    ignore
      (Engine.exclusively t.engine (fun () -> promote t)
        : (string, string) result);
    run t
  end
  else
    match (try step t with e -> `Crashed (Printexc.to_string e)) with
    | `Stopped -> ()
    | `Ready | `Applied _ -> run t  (* more may be waiting: no sleep *)
    | `Idle ->
      sleep t t.config.poll_interval;
      run t
    | `Retry msg ->
      locked t (fun () ->
          if t.last_error <> Some msg then begin
            t.config.log ("replication: " ^ msg);
            t.last_error <- Some msg
          end);
      sleep t (Backoff.next t.backoff);
      run t
    | `Fatal msg | `Crashed msg ->
      (* stop following; keep serving reads at the last applied state *)
      locked t (fun () -> t.last_error <- Some msg);
      t.config.log ("replication halted: " ^ msg)

let start t =
  match t.thread with
  | Some _ -> ()
  | None -> t.thread <- Some (Thread.create run t)

let stop t =
  if not t.closed then begin
    locked t (fun () ->
        t.stopping <- true;
        (* break a request the loop may be blocked in *)
        match t.conn with Some c -> Client.shutdown c.client | None -> ());
    wake t;
    (match t.thread with
    | Some th ->
      t.thread <- None;
      Thread.join th
    | None -> ());
    locked t (fun () ->
        (match t.conn with Some c -> Client.close c.client | None -> ());
        t.conn <- None;
        t.connected <- false);
    t.closed <- true;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end
