(* The replica side of log shipping: a pull loop that keeps a local
   durable KB in lockstep with a primary.  See link.mli for the
   life-cycle and locking contract. *)

module Client = Server.Client
module Engine = Server.Engine
module M = Governor.Metrics

type config = {
  primary : Server.Daemon.address;
  poll_interval : float;
  batch : int;
  connect_retry : float;
  log : string -> unit;
}

let default_config primary =
  { primary;
    poll_interval = 0.05;
    batch = 512;
    connect_retry = 0.5;
    log = (fun _ -> ())
  }

let address_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type conn = { client : Client.t; mutable greeted : bool }

type t = {
  config : config;
  engine : Engine.t;
  session : Kb.Session.t;
  persist : Persist.t;
  metrics : M.t option;
  lock : Mutex.t;  (* guards [conn] and the status fields *)
  wake_r : Unix.file_descr;  (* self-pipe: interrupts the poll sleep *)
  wake_w : Unix.file_descr;
  mutable conn : conn option;
  mutable promoted : bool;
  mutable promote_requested : bool;
  mutable stopping : bool;
  mutable closed : bool;
  mutable connected : bool;
  mutable primary_seq : int;
  mutable last_error : string option;
  mutable bootstraps : int;
  mutable thread : Thread.t option;
}

type status = {
  role : string;
  primary : string;
  connected : bool;
  last_applied : int;
  primary_seq : int;
  lag : int;
  bootstraps : int;
  last_error : string option;
}

let create ?metrics ~engine ~session ~persist config =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  { config;
    engine;
    session;
    persist;
    metrics;
    lock = Mutex.create ();
    wake_r;
    wake_w;
    conn = None;
    promoted = false;
    promote_requested = false;
    stopping = false;
    closed = false;
    connected = false;
    primary_seq = 0;
    last_error = None;
    bootstraps = 0;
    thread = None
  }

let bump t name n =
  match t.metrics with Some m -> M.add m name n | None -> ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let drop t =
  locked t (fun () ->
      (match t.conn with Some c -> Client.close c.client | None -> ());
      t.conn <- None;
      t.connected <- false)

let disconnect t = drop t

(* ------------------------------------------------------------------ *)
(* One protocol step                                                   *)
(* ------------------------------------------------------------------ *)

(* Map a refusal of a handshake-ish request to a step result.  A
   ["proto"] refusal means the primary's decoder does not know the verb
   at all — an old server — so it gets the typed mismatch message
   instead of a bare decode failure. *)
let refused t (r : Protocol.refusal) =
  drop t;
  match r.kind with
  | "handshake" | "input" | "read_only" -> `Fatal r.message
  | "proto" ->
    `Fatal
      "primary does not speak the replication protocol (protocol revision \
       mismatch — upgrade the primary)"
  | _ -> `Retry r.message

let bootstrap t c =
  match Client.request c.client Protocol.fetch_snapshot with
  | Error msg ->
    drop t;
    `Retry ("snapshot fetch failed: " ^ msg)
  | Ok reply -> (
    match Protocol.decode_snapshot reply with
    | Ok (seq, dump) ->
      (* replace store and data directory atomically with respect to
         request workers; the session cache is stale afterwards *)
      Engine.exclusively t.engine (fun () ->
          Persist.install_snapshot t.persist ~seq dump;
          Kb.Session.invalidate t.session);
      locked t (fun () ->
          t.bootstraps <- t.bootstraps + 1;
          if seq > t.primary_seq then t.primary_seq <- seq);
      bump t "repl_bootstraps" 1;
      t.config.log
        (Printf.sprintf "replication: bootstrapped from snapshot at seq %d"
           seq);
      `Ready
    | Error (`Refused r) -> refused t r
    | Error (`Garbled msg) ->
      drop t;
      `Retry ("garbled snapshot reply: " ^ msg))

let greet t c =
  let seq = Persist.seq t.persist in
  match Client.request c.client (Protocol.hello ~seq) with
  | Error msg ->
    drop t;
    `Retry ("handshake failed: " ^ msg)
  | Ok reply -> (
    match Protocol.decode_hello reply with
    | Ok h -> (
      c.greeted <- true;
      locked t (fun () ->
          t.connected <- true;
          t.primary_seq <- h.seq;
          t.last_error <- None);
      match h.action with `Tail -> `Ready | `Snapshot -> bootstrap t c)
    | Error (`Refused r) -> refused t r
    | Error (`Garbled msg) ->
      drop t;
      `Retry ("garbled handshake reply: " ^ msg))

let pull t c =
  let from = Persist.seq t.persist in
  match Client.request c.client (Protocol.pull ~from ~max:t.config.batch) with
  | Error msg ->
    drop t;
    `Retry ("pull failed: " ^ msg)
  | Ok reply -> (
    match Protocol.decode_pull reply with
    | Ok (seq, mutations) -> (
      locked t (fun () -> t.primary_seq <- seq);
      match mutations with
      | [] -> `Idle
      | ms ->
        (* replay under the engine lock so readers never observe a
           half-applied batch; the session's on_mutation observer logs
           each record to the replica's own WAL as it applies *)
        Engine.exclusively t.engine (fun () ->
            List.iter (fun m -> Kb.Session.apply t.session m) ms);
        let n = List.length ms in
        bump t "repl_applied" n;
        `Applied n)
    | Error (`Refused r) when r.kind = "behind" ->
      (* our position was compacted away under us *)
      bootstrap t c
    | Error (`Refused r) -> refused t r
    | Error (`Garbled msg) ->
      drop t;
      `Retry ("garbled pull reply: " ^ msg))

let step t =
  if t.stopping || t.promoted then `Stopped
  else
    match t.conn with
    | None -> (
      match
        Client.connect ~retry:t.config.connect_retry t.config.primary
      with
      | Error msg ->
        locked t (fun () -> t.connected <- false);
        `Retry
          (Printf.sprintf "cannot reach primary at %s: %s"
             (address_to_string t.config.primary)
             msg)
      | Ok client ->
        let c = { client; greeted = false } in
        locked t (fun () -> t.conn <- Some c);
        greet t c)
    | Some c when not c.greeted -> greet t c
    | Some c -> pull t c

(* ------------------------------------------------------------------ *)
(* Promotion, status                                                   *)
(* ------------------------------------------------------------------ *)

let promote t =
  let result, conn =
    locked t (fun () ->
        if t.promoted then
          (Error "already promoted: this server is a standalone primary",
           None)
        else begin
          t.promoted <- true;
          t.promote_requested <- false;
          let c = t.conn in
          t.conn <- None;
          t.connected <- false;
          (Ok "primary", c)
        end)
  in
  (match conn with Some c -> Client.close c.client | None -> ());
  (match result with
  | Ok _ ->
    t.config.log "promoted: replication stopped, now a standalone primary"
  | Error _ -> ());
  result

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1 : int)
  with Unix.Unix_error _ -> ()

(* Safe to call from a signal handler: a flag and a pipe write. *)
let request_promote t =
  t.promote_requested <- true;
  wake t

let status t =
  locked t (fun () ->
      let last_applied = Persist.seq t.persist in
      { role = (if t.promoted then "primary" else "replica");
        primary = address_to_string t.config.primary;
        connected = t.connected;
        last_applied;
        primary_seq = t.primary_seq;
        lag = max 0 (t.primary_seq - last_applied);
        bootstraps = t.bootstraps;
        last_error = t.last_error
      })

(* ------------------------------------------------------------------ *)
(* The background loop                                                 *)
(* ------------------------------------------------------------------ *)

let sleep t dt =
  match Unix.select [ t.wake_r ] [] [] dt with
  | readable, _, _ when List.mem t.wake_r readable ->
    let b = Bytes.create 16 in
    (try ignore (Unix.read t.wake_r b 0 16 : int)
     with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let rec run t =
  if t.stopping then ()
  else if t.promote_requested && not t.promoted then begin
    ignore (promote t : (string, string) result);
    run t
  end
  else
    match (try step t with e -> `Crashed (Printexc.to_string e)) with
    | `Stopped -> ()
    | `Ready | `Applied _ -> run t  (* more may be waiting: no sleep *)
    | `Idle ->
      sleep t t.config.poll_interval;
      run t
    | `Retry msg ->
      locked t (fun () ->
          if t.last_error <> Some msg then begin
            t.config.log ("replication: " ^ msg);
            t.last_error <- Some msg
          end);
      sleep t t.config.poll_interval;
      run t
    | `Fatal msg | `Crashed msg ->
      (* stop following; keep serving reads at the last applied state *)
      locked t (fun () -> t.last_error <- Some msg);
      t.config.log ("replication halted: " ^ msg)

let start t =
  match t.thread with
  | Some _ -> ()
  | None -> t.thread <- Some (Thread.create run t)

let stop t =
  if not t.closed then begin
    locked t (fun () ->
        t.stopping <- true;
        (* break a request the loop may be blocked in *)
        match t.conn with Some c -> Client.shutdown c.client | None -> ());
    wake t;
    (match t.thread with
    | Some th ->
      t.thread <- None;
      Thread.join th
    | None -> ());
    locked t (fun () ->
        (match t.conn with Some c -> Client.close c.client | None -> ());
        t.conn <- None;
        t.connected <- false);
    t.closed <- true;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end
