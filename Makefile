.PHONY: all build test bench bench-micro bench-smoke examples doc clean fuzz

all: build

build:
	dune build

test:
	dune runtest

# Enumeration benchmark (pruned search vs naive oracle): writes
# BENCH_PR2.json with median wall times, search counters and the
# naive/pruned node ratios.  See docs/PERFORMANCE.md.
bench:
	dune exec bench/enum.exe

# Microbenchmarks of the core engines (bechamel).
bench-micro:
	dune exec bench/main.exe

# Run every bench workload under a 2s wall-clock budget and emit JSON;
# fails if any workload overshoots its deadline instead of surrendering.
bench-smoke:
	dune exec bench/smoke.exe

examples:
	@for e in quickstart penguin loan colors kb_versioning legal deductive_db paper_tour; do \
	  echo "== examples/$$e =="; dune exec examples/$$e.exe; done

doc:  # requires odoc
	dune build @doc

# Re-run the whole suite under several qcheck seeds, then hammer the
# parser fuzz suite with a larger input count.
fuzz:
	@for i in 1 2 3 4 5 6 7 8; do \
	  QCHECK_SEED=$$((i * 7919)) dune exec test/main.exe -- -e \
	    | tail -1; done
	FUZZ_ITERS=5000 dune exec test/main.exe -- test fuzz -e | tail -1

clean:
	dune clean
