.PHONY: all build test bench bench-prefer bench-micro bench-smoke \
	bench-serve bench-persist bench-replica bench-cluster \
	bench-concurrent bench-incremental crash-test chaos stress \
	serve-smoke examples doc \
	clean fuzz

# Single source of truth for the randomized suites: the FUZZ_ITERS-scaled
# fuzzers as suite=iterations pairs (fuzz and chaos share the sweep
# loop), and the fault-injection suites crash-test runs in order.
FUZZ_SUITES = fuzz=5000 diff-stable=2000 diff-prefer=5000 diff-inc=1500 \
	proto=20000 \
	persist=20000 replica=2000
CHAOS_FUZZ_SUITES = replica=2000 proto=20000 persist=20000
CRASH_SUITES = crash replica linearize

all: build

build:
	dune build

test:
	dune runtest

# Enumeration benchmark (pruned search vs naive oracle): writes
# BENCH_PR2.json with median wall times, search counters and the
# naive/pruned node ratios, then fails if the scaled workload's node
# ratio regresses below the floor (PR 2 baseline: 364.8) or its pruned
# median overshoots the absolute wall-clock ceiling (baseline: 4 ms —
# the ceiling also catches a regression that slows both engines
# equally).  Then the compiled-kernel benchmark (flat-array kernel vs
# the pruned search, same model lists): writes BENCH_PR9.json and
# fails if the scaled workload's pruned/compiled wall ratio falls
# below the floor (PR 9 baseline: 2.0; floor at half) or the compiled
# median overshoots the ceiling.  See docs/PERFORMANCE.md.
bench:
	dune exec bench/enum.exe -- --min-ratio 300 --max-wall-ms 250
	dune exec bench/solve_bench.exe -- --min-wall-ratio 1.0 --max-wall-ms 250

# Preference benchmark (compiled preferences vs the naive
# refined-grounding oracle, scaled prioritized-defaults workloads),
# run once with the pruned search on the compiled program and once
# with the flat-array kernel (--search compiled): writes
# BENCH_PR8.json, then fails if the scaled workload's
# compiled-vs-naive node ratio regresses below the floor (PR 8
# baseline: 145.8; the kernel only raises the ratio).  See
# docs/PERFORMANCE.md.
bench-prefer:
	dune exec bench/prefer.exe -- --min-ratio 140
	dune exec bench/prefer.exe -- --search compiled --min-ratio 140 \
	  --out BENCH_PR8_compiled.json

# Serving benchmark (socket server, repeated-query workload): writes
# BENCH_PR3.json with requests/sec and session-cache hit rate at one
# worker and at four.  See docs/SERVER.md.
bench-serve:
	dune exec bench/serve.exe

# Persistence benchmark (WAL write-path overhead vs in-memory, with and
# without fsync, and recovery replay speed): writes BENCH_PR4.json.
# See docs/PERSISTENCE.md.
bench-persist:
	dune exec bench/persist.exe

# Replication benchmark (log-shipping throughput, replica read QPS vs
# primary, catch-up after a burst): writes BENCH_PR5.json.  See
# docs/REPLICATION.md.
bench-replica:
	dune exec bench/replica.exe

# Cluster benchmark (sync vs async commit latency/throughput,
# aggregate read QPS over a 1-primary/2-replica chain, failover time
# to the first successful write): writes BENCH_PR6.json.  See
# docs/REPLICATION.md.
bench-cluster:
	dune exec bench/cluster.exe

# Incremental-maintenance benchmark (delta eviction vs flush-on-write
# under a mixed read/write workload, primary and replica): writes
# BENCH_PR10.json and fails unless the delta runs hold a 0.90 cache
# hit rate under sustained writes and beat the wholesale baseline.
# See docs/INCREMENTAL.md.
bench-incremental:
	dune exec bench/incremental.exe -- --min-hit-rate 0.9

# Concurrent-serving benchmark (lock-free snapshot reads under writer
# pressure: read QPS at 1 worker vs 4 with writers parked in the
# group-commit window, plus a 64-client batched crowd that must finish
# with zero errors): writes BENCH_PR7.json.  See docs/SERVER.md.
bench-concurrent:
	dune exec bench/concurrent.exe

# The concurrency harness, with backtraces and a time box: the
# parallel property suite (snapshot immutability, shard-lock overlap,
# lock-free reads) and the randomized linearizability oracle, run
# repeatedly to shake out schedules.
stress:
	@for i in 1 2 3 4 5; do \
	  OCAMLRUNPARAM=b timeout 60 dune exec test/main.exe -- test parallel -e \
	    | tail -1; \
	  OCAMLRUNPARAM=b timeout 60 dune exec test/main.exe -- test linearize -e \
	    | tail -1; done

# Crash recovery under exhaustive fault injection: tear the WAL at
# every write boundary of a mutation script and check that recovery
# rebuilds exactly the acknowledged prefix — locally, and on a replica
# killed at every append boundary mid-catch-up; the replica suite also
# sweeps epoch fencing at every protocol boundary (a revived stale
# primary is refused everywhere).
crash-test:
	@for s in $(CRASH_SUITES); do \
	  dune exec test/main.exe -- test $$s -e; done

# The aggregate fault sweep: crash/kill recovery, the fencing and
# failover suites at a larger differential-schedule count, and the
# wire-protocol/WAL-record fuzzers — the one target to run before
# trusting a failover story.
chaos: crash-test
	@for sc in $(CHAOS_FUZZ_SUITES); do \
	  FUZZ_ITERS=$${sc#*=} dune exec test/main.exe -- test $${sc%%=*} -e \
	    | tail -1; done
	dune build @replica @cluster

# Microbenchmarks of the core engines (bechamel).
bench-micro:
	dune exec bench/main.exe

# Run every bench workload under a 2s wall-clock budget and emit JSON;
# fails if any workload overshoots its deadline instead of surrendering.
bench-smoke:
	dune exec bench/smoke.exe

# Boot the query server, make one round-trip, drain — all under a hard
# 5-second deadline (build first so the clock only times the server).
serve-smoke:
	dune build bench/serve.exe
	timeout 5 ./_build/default/bench/serve.exe --smoke

examples:
	@for e in quickstart penguin loan colors kb_versioning legal deductive_db paper_tour preferences; do \
	  echo "== examples/$$e =="; dune exec examples/$$e.exe; done

doc:  # requires odoc
	dune build @doc

# Re-run the whole suite under several qcheck seeds, then hammer the
# parser, preference-differential, wire-protocol, WAL-record and
# replication fuzz suites with a larger input count ($(FUZZ_SUITES)).
fuzz:
	@for i in 1 2 3 4 5 6 7 8; do \
	  QCHECK_SEED=$$((i * 7919)) dune exec test/main.exe -- -e \
	    | tail -1; done
	@for sc in $(FUZZ_SUITES); do \
	  FUZZ_ITERS=$${sc#*=} dune exec test/main.exe -- test $${sc%%=*} -e \
	    | tail -1; done

clean:
	dune clean
