(* Rule preferences, end to end: named rules, a prefer declaration, the
   compiled translation and the naive oracle.

   A default (birds fly) and an exception (penguins don't) living in the
   *same* component defeat each other, so the penguin's flying ability
   is undefined.  Declaring [prefer nf > f] resolves the conflict
   without moving any rule: the compilation gives every rule of the view
   its own fresh component, reifies the preference as component order,
   and the ordinary stable-model search does the rest.

   Run with: dune exec examples/preferences.exe *)

let source = {|
  b  : bird(tweety).
  p  : penguin(tweety).
  f  : fly(X) :- bird(X).
  nf : -fly(X) :- penguin(X).
  prefer nf > f.
|}

let print_models label models =
  Format.printf "%s: %d model(s)@." label (List.length models);
  List.iter (fun m -> Format.printf "  %a@." Logic.Interp.pp m) models

let () =
  let ast = Lang.Parser.parse_file source in
  let program =
    match Ordered.Program.of_ast ast with
    | Ok p -> p
    | Error e -> failwith e
  in
  let prefs = Lang.Ast.prefer_pairs ast in
  let main = Ordered.Program.component_id_exn program "main" in

  (* Without the preference the contradicting pair defeats itself. *)
  let g = Ordered.Gop.ground program main in
  print_models "no preference"
    (Ordered.Budget.value (Ordered.Stable.stable_models g));

  (* The compiled route: translate, ground, enumerate — the solver is
     unchanged, the preference lives entirely in the component order. *)
  let spec = Prefer.Spec.make program main prefs in
  let compiled = Prefer.Compile.gop (Prefer.Compile.compile spec) in
  print_models "prefer nf > f (compiled)"
    (Ordered.Budget.value (Ordered.Stable.stable_models compiled));

  (* The naive oracle refines the original grounding's defeat edges
     directly and leaf-checks; it must agree with the compilation. *)
  print_models "prefer nf > f (naive)"
    (Ordered.Budget.value (Prefer.Naive.preferred_models spec));

  (* The combined rule order must stay a strict partial order: closing
     a cycle is a typed diagnostic, not a silent misbehaviour. *)
  match Prefer.Spec.make program main (("f", "nf") :: prefs) with
  | _ -> assert false
  | exception Ordered.Diag.Error e ->
    Format.printf "cycle refused: %s@." (Ordered.Diag.to_string e)
