(* Knowledge-base layer: objects, inheritance, defaults/exceptions and
   versioning (the paper's Section 5 reading of ordered logic).

   A small HR knowledge base: a company policy object defines defaults; a
   department object specialises them; policy revisions are stacked as new
   versions, each overruling its predecessor where they conflict.

   Run with: dune exec examples/kb_versioning.exe *)

let rule = Lang.Parser.parse_rule
let lit = Lang.Parser.parse_literal

let show kb obj q =
  Format.printf "%-14s %-28s %a@." obj q Logic.Interp.pp_value
    (Kb.query kb ~obj (lit q))

let () =
  let kb = Kb.create () in

  (* The company-wide policy: everyone gets a bonus, remote work needs
     approval. *)
  Kb.define kb "policy"
    [ rule "bonus(X) :- employee(X).";
      rule "-remote(X) :- employee(X).";
      (* Defaults must be stated, not assumed: nobody is an engineer
         unless a more specific object says so. *)
      rule "-engineer(X) :- employee(X).";
      rule "employee(ann).";
      rule "employee(bob)."
    ];

  (* Engineering inherits the policy but makes remote work the default. *)
  Kb.define kb ~isa:[ "policy" ] "engineering"
    [ rule "remote(X) :- employee(X), engineer(X).";
      rule "engineer(ann)."
    ];

  Format.printf "--- initial knowledge base ---@.";
  show kb "engineering" "remote(ann)";
  show kb "engineering" "remote(bob)";
  show kb "engineering" "bonus(ann)";

  (* A policy revision: bonuses are frozen.  The new version sits below
     the old one, overruling only what it contradicts. *)
  let v2 = Kb.new_version kb ~rules:[ rule "-bonus(X) :- employee(X)." ]
      "engineering" in
  Format.printf "--- after revision %s ---@." v2;
  show kb v2 "bonus(ann)";
  show kb v2 "remote(ann)";

  (* Explanations survive versioning. *)
  Format.printf "%a@." Ordered.Explain.pp
    (Kb.explain kb ~obj:v2 (lit "bonus(ann)"));

  (* A later version can re-grant bonuses to engineers only. *)
  let v3 =
    Kb.new_version kb ~rules:[ rule "bonus(X) :- engineer(X)." ] "engineering"
  in
  Format.printf "--- after revision %s ---@." v3;
  show kb v3 "bonus(ann)";
  show kb v3 "bonus(bob)";
  Format.printf "versions of engineering: %s@."
    (String.concat " -> " (Kb.versions kb "engineering"))
