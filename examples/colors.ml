(* The paper's Example 9: negated rule heads as exceptions, and stable
   models as alternative choices.

   The negative program

     colored(X) :- color(X), -colored(Y), X != Y.
     -colored(X) :- ugly_color(X).

   under the 3-level semantics of Section 4 reads: a color can be chosen
   when some other color is rejected, and ugly colors are always rejected.
   With only non-ugly colors each stable model selects exactly one of
   them; an ugly color, being rejected unconditionally, supports the
   choice of every non-ugly color at once — a subtlety of the formal
   semantics that the paper's informal gloss ("select exactly one")
   glosses over.  This example shows both situations.

   Run with: dune exec examples/colors.exe *)

open Logic

let base = {|
  colored(X) :- color(X), -colored(Y), X != Y.
  -colored(X) :- ugly_color(X).
|}

let run title facts =
  let rules = Lang.Parser.parse_rules (base ^ facts) in
  let stables = Ordered.Negative.stable_models rules in
  Format.printf "--- %s ---@." title;
  Format.printf "%d stable model(s)@." (List.length stables);
  List.iter
    (fun m ->
      let chosen =
        List.filter
          (fun (l : Literal.t) ->
            l.pol && String.equal l.atom.Atom.pred "colored")
          (Interp.to_literals m)
      in
      Format.printf "  choice: %a@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Literal.pp)
        chosen)
    stables;
  let least = Ordered.Negative.least_model rules in
  let rejected =
    List.filter
      (fun (l : Literal.t) ->
        (not l.pol) && String.equal l.atom.Atom.pred "colored")
      (Interp.to_literals least)
  in
  Format.printf "  always rejected: %a@.@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Literal.pp)
    rejected

let () =
  (* Pure choice: each stable model picks exactly one color. *)
  run "two non-ugly colors" "color(red). color(green).";
  (* An ugly color is rejected by the exception rule, and that rejection
     supports choosing every remaining color simultaneously. *)
  run "two non-ugly colors and an ugly one"
    "color(red). color(green). color(brown). ugly_color(brown)."
