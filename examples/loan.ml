(* The paper's Figure 3: combining knowledge from disagreeing experts.

   myself (c1) consults three experts on whether to take a loan:
   - Expert2 (c2), independent: take a loan when inflation exceeds 11;
   - Expert4 (c4): do not take a loan when the loan rate exceeds 14;
   - Expert3 (c3 < c4), refining Expert4: take a loan when inflation
     exceeds the loan rate by more than 2.

   Depending on the facts at myself level, the answer is inferred from
   Expert2 alone, defeated by the clash between Expert2 and Expert4, or
   recovered because Expert3 overrules Expert4.

   Run with: dune exec examples/loan.exe *)

let source facts = {|
component c2 {
  take_loan :- inflation(X), X > 11.
}
component c4 {
  -take_loan :- loan_rate(X), X > 14.
}
component c3 extends c4 {
  take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
}
component c1 extends c2, c3 {
|} ^ facts ^ "\n}\n"

let scenario title facts =
  let src = source facts in
  let program = Ordered.Program.parse_exn src in
  let c1 = Ordered.Program.component_id_exn program "c1" in
  let g = Ordered.Gop.ground program c1 in
  let m = Ordered.Vfix.least_model g in
  let q = Lang.Parser.parse_literal "take_loan" in
  Format.printf "--- %s ---@." title;
  Format.printf "take_loan: %a@." Logic.Interp.pp_value
    (Logic.Interp.value_lit m q);
  Format.printf "%a@.@." Ordered.Explain.pp (Ordered.Explain.explain g q)

let () =
  scenario "scenario 1: inflation(12)" "inflation(12).";
  scenario "scenario 2: inflation(12), loan_rate(16)"
    "inflation(12). loan_rate(16).";
  scenario "scenario 3: inflation(19), loan_rate(16)"
    "inflation(19). loan_rate(16)."
