(* The paper's Figure 1: defaults and exceptions by overruling.

   Component c2 holds the general ornithology (birds fly, birds are not
   ground animals); component c1 < c2 holds the specific exception (the
   penguin is a ground animal, and ground animals do not fly).  Viewed
   from c1, the exception overrules the default; merging everything into a
   single component turns overruling into mutual defeat and the penguin's
   flying ability becomes undefined (the paper's P-hat-1).

   Run with: dune exec examples/penguin.exe *)

let source = {|
component c2 {
  bird(penguin).
  bird(pigeon).
  fly(X) :- bird(X).
  -ground_animal(X) :- bird(X).
}
component c1 extends c2 {
  ground_animal(penguin).
  -fly(X) :- ground_animal(X).
}
|}

let () =
  let program = Ordered.Program.parse_exn source in
  let c1 = Ordered.Program.component_id_exn program "c1" in
  let g = Ordered.Gop.ground program c1 in
  let m = Ordered.Vfix.least_model g in
  Format.printf "--- ordered view from c1 ---@.";
  Format.printf "least model: %a@." Logic.Interp.pp m;
  List.iter
    (fun q ->
      let l = Lang.Parser.parse_literal q in
      Format.printf "%s: %a@." q Logic.Interp.pp_value
        (Logic.Interp.value_lit m l))
    [ "fly(pigeon)"; "fly(penguin)"; "ground_animal(penguin)" ];
  Format.printf "@.why doesn't the penguin fly?@.%a@.@."
    Ordered.Explain.pp
    (Ordered.Explain.explain g (Lang.Parser.parse_literal "fly(penguin)"));

  (* Flatten the two components into one: the exception no longer sits
     below the default, so the contradicting rules defeat each other. *)
  let flat = Ordered.Program.singleton (Ordered.Program.all_rules program) in
  let gf = Ordered.Gop.ground flat 0 in
  let mf = Ordered.Vfix.least_model gf in
  Format.printf "--- flattened (single component) ---@.";
  Format.printf "least model: %a@." Logic.Interp.pp mf;
  Format.printf "@.and now?@.%a@."
    Ordered.Explain.pp
    (Ordered.Explain.explain gf (Lang.Parser.parse_literal "fly(penguin)"))
