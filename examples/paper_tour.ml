(* A guided tour through every example of the paper, executed.

   Each section prints what the paper claims and what this implementation
   computes; the test suite asserts the same facts, this program narrates
   them.  Run with: dune exec examples/paper_tour.exe *)

open Logic

let lit = Lang.Parser.parse_literal
let rules = Lang.Parser.parse_rules
let section n title = Format.printf "@.=== %s: %s ===@." n title

let ground_at prog name =
  Ordered.Gop.ground prog (Ordered.Program.component_id_exn prog name)

let show g q =
  Format.printf "  %-28s %a@." q Interp.pp_value
    (Interp.value_lit (Ordered.Vfix.least_model g) (lit q))

let p1_src =
  {| component c2 {
       bird(penguin). bird(pigeon).
       fly(X) :- bird(X).
       -ground_animal(X) :- bird(X).
     }
     component c1 extends c2 {
       ground_animal(penguin).
       -fly(X) :- ground_animal(X).
     } |}

let () =
  section "Figure 1 / Example 1" "program P1: overruling";
  let p1 = Ordered.Program.parse_exn p1_src in
  let g1 = ground_at p1 "c1" in
  Format.printf " viewed from c1 (the exception applies):@.";
  show g1 "fly(penguin)";
  show g1 "fly(pigeon)";
  let g2 = ground_at p1 "c2" in
  Format.printf " viewed from c2 (no exception in sight):@.";
  show g2 "fly(penguin)";

  section "Example 2" "rule statuses w.r.t. I1";
  let i1 =
    Interp.of_literals
      (List.map lit
         [ "bird(pigeon)"; "bird(penguin)"; "ground_animal(penguin)";
           "-ground_animal(pigeon)"; "fly(pigeon)"; "-fly(penguin)"
         ])
  in
  List.iter
    (fun r -> Format.printf "  %a@." Ordered.Status.pp_report r)
    (Ordered.Status.report_all g1 i1);

  section "Example 3" "models of P1, P1-flattened, and P3";
  Format.printf "  I1 model of P1 in c1: %b@." (Ordered.Model.is_model g1 i1);
  let flat = Ordered.Program.singleton (Ordered.Program.all_rules p1) in
  let gf = ground_at flat "main" in
  Format.printf "  I1 model of flattened P1: %b@."
    (Ordered.Model.is_model gf i1);
  Format.printf "  least model of flattened P1: %a@." Interp.pp
    (Ordered.Vfix.least_model gf);
  let p3 = Ordered.Program.parse_exn "component main { a :- b. -a :- b. }" in
  let g3 = ground_at p3 "main" in
  Format.printf "  models of P3 = {a :- b. -a :- b.}:@.";
  List.iter
    (fun m ->
      if Ordered.Model.is_model g3 m then Format.printf "    %a@." Interp.pp m)
    (let atoms = g3.Ordered.Gop.active_base in
     let rec go = function
       | [] -> [ Interp.empty ]
       | a :: rest ->
         List.concat_map
           (fun m ->
             [ m; Interp.set m a true; Interp.set m a false ])
           (go rest)
     in
     go atoms);

  section "Figure 2 / Example 4" "program P2: defeating, partial models";
  let p2 =
    Ordered.Program.parse_exn
      {| component c3 { rich(mimmo). -poor(X) :- rich(X). }
         component c2 { poor(mimmo). -rich(X) :- poor(X). }
         component c1 extends c2, c3 { free_ticket(X) :- poor(X). } |}
  in
  let gp2 = ground_at p2 "c1" in
  show gp2 "rich(mimmo)";
  show gp2 "free_ticket(mimmo)";
  Format.printf "  total models in c1: %d (the paper: none exists)@."
    (List.length (Ordered.Budget.value (Ordered.Exhaustive.total_models gp2)));

  section "Figure 3" "the loan program";
  List.iter
    (fun (label, facts) ->
      let src =
        {| component c2 { take_loan :- inflation(X), X > 11. }
           component c4 { -take_loan :- loan_rate(X), X > 14. }
           component c3 extends c4 {
             take_loan :- inflation(X), loan_rate(Y), X > Y + 2. }
           component c1 extends c2, c3 { |}
        ^ facts ^ " }"
      in
      let g = ground_at (Ordered.Program.parse_exn src) "c1" in
      Format.printf "  %-34s take_loan = %a@." label Interp.pp_value
        (Interp.value_lit (Ordered.Vfix.least_model g) (lit "take_loan")))
    [ ("myself empty:", "");
      ("inflation(12):", "inflation(12).");
      ("inflation(12), loan_rate(16):", "inflation(12). loan_rate(16).");
      ("inflation(19), loan_rate(16):", "inflation(19). loan_rate(16).")
    ];

  section "Example 5" "program P5: two stable models";
  let p5 =
    Ordered.Program.parse_exn
      {| component c2 { a. b. c. }
         component c1 extends c2 { -a :- b, c. -b :- a. -b :- -b. } |}
  in
  let g5 = ground_at p5 "c1" in
  Format.printf "  least (assumption-free, not stable): %a@." Interp.pp
    (Ordered.Vfix.least_model g5);
  List.iter
    (fun m -> Format.printf "  stable: %a@." Interp.pp m)
    (Ordered.Budget.value (Ordered.Stable.stable_models g5));

  section "Example 6" "OV(ancestor): explicit closed world";
  let anc =
    rules
      "anc(X, Y) :- parent(X, Y). anc(X, Y) :- parent(X, Z), anc(Z, Y). \
       parent(a, b). parent(b, c)."
  in
  let gov = Ordered.Bridge.ground_ov anc in
  let m = Ordered.Vfix.least_model gov in
  Format.printf "  anc(a, c) = %a, anc(c, a) = %a (total: %b)@."
    Interp.pp_value
    (Interp.value_lit m (lit "anc(a, c)"))
    Interp.pp_value
    (Interp.value_lit m (lit "anc(c, a)"))
    (Ordered.Exhaustive.is_total gov m);

  section "Example 7" "{p} and the OV/EV split on p :- -p";
  let c7 = rules "p :- -p." in
  let m7 = Interp.of_literals [ lit "p" ] in
  Format.printf "  {p} 3-valued model of C: %b@."
    (Datalog.Threeval.is_three_valued_model (Datalog.Nprog.of_rules c7) m7);
  Format.printf "  {p} model of OV(C) in C: %b@."
    (Ordered.Model.is_model (Ordered.Bridge.ground_ov c7) m7);
  Format.printf "  {p} model of EV(C) in C: %b (Prop. 5a)@."
    (Ordered.Model.is_model (Ordered.Bridge.ground_ev c7) m7);

  section "Examples 8-9" "negative programs and the 3-level semantics";
  let c8 =
    rules
      "fly(X) :- bird(X). -fly(X) :- ground_animal(X). \
       bird(pigeon). bird(penguin). ground_animal(penguin)."
  in
  let two_level = Ordered.Vfix.least_model (Ordered.Bridge.ground_ov c8) in
  Format.printf "  two-level: fly(penguin) = %a (nothing can be said)@."
    Interp.pp_value
    (Interp.value_lit two_level (lit "fly(penguin)"));
  let stable8 = Ordered.Negative.stable_models c8 in
  List.iter
    (fun s ->
      Format.printf "  3-level stable: fly(penguin) = %a, fly(pigeon) = %a@."
        Interp.pp_value
        (Interp.value_lit s (lit "fly(penguin)"))
        Interp.pp_value
        (Interp.value_lit s (lit "fly(pigeon)")))
    stable8;
  let c9 =
    rules
      "colored(X) :- color(X), -colored(Y), X != Y. \
       -colored(X) :- ugly_color(X). color(red). color(green)."
  in
  List.iter
    (fun s ->
      let chosen =
        List.filter
          (fun (l : Literal.t) ->
            l.pol && String.equal l.atom.Atom.pred "colored")
          (Interp.to_literals s)
      in
      Format.printf "  color choice: %a@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Literal.pp)
        chosen)
    (Ordered.Negative.stable_models c9);
  Format.printf "@.tour complete.@."
