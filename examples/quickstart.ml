(* Quickstart: build an ordered program through the API, compute its least
   model, inspect rule statuses and enumerate stable models.

   Run with: dune exec examples/quickstart.exe *)

open Logic

let lit s = Lang.Parser.parse_literal s
let rule s = Lang.Parser.parse_rule s

let () =
  (* An ordered program is a set of named components plus a partial order;
     [("specific", "general")] declares specific < general, so [specific]
     inherits — and may overrule — the rules of [general]. *)
  let program =
    Ordered.Program.make_exn
      [ ( "general",
          [ rule "works(X) :- employee(X).";
            (* Classical negation has no implicit closed world: state the
               default "employees are not on leave" explicitly, so that a
               leave fact in a lower component can overrule it. *)
            rule "-on_leave(X) :- employee(X).";
            rule "employee(ann).";
            rule "employee(bob)."
          ] );
        ( "specific",
          [ rule "on_leave(ann).";
            rule "-works(X) :- on_leave(X)."
          ] )
      ]
      [ ("specific", "general") ]
  in
  let viewpoint = Ordered.Program.component_id_exn program "specific" in
  let g = Ordered.Gop.ground program viewpoint in

  (* The least model: the fixpoint of the ordered immediate transformation.
     Ann's leave overrules the inherited default that employees work. *)
  let m = Ordered.Vfix.least_model g in
  Format.printf "least model: %a@." Interp.pp m;
  assert (Interp.holds m (lit "works(bob)"));
  assert (Interp.holds m (lit "-works(ann)"));

  (* Ask why. *)
  Format.printf "%a@."
    Ordered.Explain.pp
    (Ordered.Explain.explain g (lit "works(ann)"));

  (* Definition 2 statuses of every ground rule w.r.t. the model. *)
  List.iter
    (fun r -> Format.printf "%a@." Ordered.Status.pp_report r)
    (Ordered.Status.report_all g m);

  (* Model-theory: the least model is assumption-free and, here, the
     unique stable model. *)
  assert (Ordered.Model.is_model g m);
  assert (Ordered.Model.is_assumption_free g m);
  (match Ordered.Budget.value (Ordered.Stable.stable_models g) with
  | [ s ] -> assert (Interp.equal s m)
  | other -> Format.printf "unexpected: %d stable models@." (List.length other));
  Format.printf "quickstart ok@."
