(* A small deductive database: bulk-loaded base relations under an
   ordered-policy program, with results exported back as a relation.

   The paper positions ordered logic as a foundation for knowledge-base
   systems over database relations (its Example 6 defines [parent]
   "through a database relation"); this example shows that workflow:
   EDB tuples -> policy components -> query -> dump.

   Run with: dune exec examples/deductive_db.exe *)

let lit = Lang.Parser.parse_literal

(* Base relations, as they would arrive from delimited files
   (Edb.facts_of_file does the same from a path). *)
let employees = {|
alice	engineering	120
bob	engineering	95
carol	sales	105
dave	sales	80
|}

let manages = {|
alice	bob
carol	dave
|}

let policy = {|
% Closed world for the base relations (the paper's OV idiom, Section 3):
% any employee/manages tuple not loaded below is false, which blocks the
% junk instantiations of the policy rules.
component cwa {
  -employee(X, Y, Z).
  -manages(X, Y).
  -senior(X).           % derived relations need closing too: an open
                        % senior(E) guard would keep the default
                        % suppressed for non-seniors
}

% Company-wide default: no stock grants.
component defaults extends cwa {
  -eligible(E) :- employee(E, D, S).
}

% HQ refines the default: seniors are eligible.
component hq extends defaults {
  senior(E) :- employee(E, D, S), S >= 100.
  eligible(E) :- senior(E).
}

% The engineering addendum refines further: reports of a senior manager
% are eligible too (mentoring incentive).
component engineering extends hq {
  eligible(E) :- manages(M, E), senior(M), employee(E, engineering, S).
}
|}

let () =
  let program = Ordered.Program.parse_exn policy in
  let viewpoint = Ordered.Program.component_id_exn program "engineering" in
  let program =
    List.fold_left
      (fun p (rel, doc) ->
        match Edb.facts_of_string ~rel doc with
        | Ok facts -> Ordered.Program.add_rules p viewpoint facts
        | Error e -> failwith e)
      program
      [ ("employee", employees); ("manages", manages) ]
  in
  let g = Ordered.Gop.ground program viewpoint in
  let m = Ordered.Vfix.least_model g in

  Format.printf "eligible for stock grants (engineering view):@.";
  List.iter
    (fun l -> Format.printf "  %a@." Logic.Literal.pp l)
    (Ordered.Query.holds_instances g (lit "eligible(X)"));

  (* bob is eligible only through the engineering addendum: *)
  Format.printf "@.%a@.@." Ordered.Explain.pp
    (Ordered.Explain.explain g (lit "eligible(bob)"));
  (* dave is denied by the company-wide default: *)
  Format.printf "%a@.@." Ordered.Explain.pp
    (Ordered.Explain.explain g (lit "eligible(dave)"));

  (* Export the derived relation, closed-world style. *)
  Format.printf "dump of eligible/1:@.%s"
    (Edb.dump_relation ~pred:"eligible" m)
