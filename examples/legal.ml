(* Legal reasoning with ordered logic: lex specialis (the more specific
   law overrules the general one) and lex posterior (the later enactment
   overrules the earlier) are exactly the paper's overruling; a clash
   between two incomparable authorities is the paper's defeating, and the
   stable models enumerate the ways a court could resolve it.

   Run with: dune exec examples/legal.exe *)

let lit = Lang.Parser.parse_literal

let statutes = {|
% The general law of contracts.
component civil_code {
  valid(C) :- contract(C), signed(C).
  -valid(C) :- contract(C), -capacity(C).
  capacity(C) :- contract(C), adult_parties(C).
}

% Consumer-protection law refines the civil code (lex specialis).
% Classical negation has no implicit closed world, so the law also
% states the default "terms are not individually negotiated" — a case
% file below can overrule it with a concrete negotiated(...) fact.
component consumer_law extends civil_code {
  -valid(C) :- consumer_contract(C), unfair_terms(C).
  -negotiated(C) :- consumer_contract(C).
}

% A later amendment refines consumer law (lex posterior): unfair terms
% are tolerated when individually negotiated.
component amendment extends consumer_law {
  valid(C) :- consumer_contract(C), unfair_terms(C), negotiated(C).
}

% The case at bar sits below everything it may draw on.
component case extends amendment {
  contract(c1).      signed(c1).   adult_parties(c1).
  consumer_contract(c1).           unfair_terms(c1).

  contract(c2).      signed(c2).   adult_parties(c2).
  consumer_contract(c2).           unfair_terms(c2).  negotiated(c2).
}
|}

let () =
  let program = Ordered.Program.parse_exn statutes in
  let case = Ordered.Program.component_id_exn program "case" in
  let g = Ordered.Gop.ground program case in
  let m = Ordered.Vfix.least_model g in
  Format.printf "--- the case at bar ---@.";
  List.iter
    (fun q ->
      Format.printf "  %-12s %a@." q Logic.Interp.pp_value
        (Logic.Interp.value_lit m (lit q)))
    [ "valid(c1)"; "valid(c2)" ];
  Format.printf "@.why is c1 not valid?@.%a@.@." Ordered.Explain.pp
    (Ordered.Explain.explain g (lit "valid(c1)"));
  Format.printf "why is c2 valid again?@.%a@.@." Ordered.Explain.pp
    (Ordered.Explain.explain g (lit "valid(c2)"));

  (* Two incomparable authorities disagreeing produce defeat: neither
     claim survives in any model — the question is genuinely open until
     the authorities are ranked. *)
  let clash order = {|
    component regulator_a { -approved(m1). safe(m1). }
    component regulator_b { approved(m1).  -untested(m1). }
    component court extends regulator_a, regulator_b { }
  |} ^ order
  in
  let approval order =
    let program = Ordered.Program.parse_exn (clash order) in
    let court = Ordered.Program.component_id_exn program "court" in
    let g = Ordered.Gop.ground program court in
    Logic.Interp.value_lit (Ordered.Vfix.least_model g) (lit "approved(m1)")
  in
  Format.printf "--- incomparable regulators ---@.";
  Format.printf "unranked authorities: approved(m1) is %a@."
    Logic.Interp.pp_value (approval "");
  (* The legislator ranks regulator_b's word above regulator_a's: *)
  Format.printf "after 'order regulator_b < regulator_a': approved(m1) is %a@."
    Logic.Interp.pp_value
    (approval "order regulator_b < regulator_a.")
